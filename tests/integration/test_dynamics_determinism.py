"""Determinism and hash-conservation gates for the dynamics seam.

Four angles, mirroring the other determinism layers:

* key conservation — a dynamics-free config content-hashes to the exact
  pre-dynamics payload (hand-rolled replica recipe), while changing any
  dynamics field mints a fresh key through ``canonical()``;
* bit-identical repeats — thermal storms, deadlock pressure, and
  composed closed-loop scenarios produce byte-identical rows across
  repeats and across ``fast_path`` on/off;
* the closed-loop race — a killed node with a scripted recovery at T
  and a watchdog due earlier recovers exactly once, at the watchdog's
  deterministic time, and the scripted-wins mirror case leaves the
  watchdog path completely quiet;
* the governors campaign axis — expansion order, size, key
  distinctness, and spec round-trips.
"""

import hashlib
import json

import pytest

from repro.campaign.spec import CampaignSpec, HASH_SCHEMA_VERSION, RunDescriptor
from repro.experiments.runner import run_single
from repro.platform.centurion import CenturionPlatform
from repro.platform.config import PlatformConfig
from repro.platform.scenario import FaultScenario

from tests.integration.test_fault_v2_determinism import _v1_config_dict

_CONFIG = PlatformConfig.small(horizon_us=120_000, fault_time_us=60_000)

_STORM = FaultScenario.from_dict({
    "name": "storm",
    "events": [
        {"kind": "thermal_storm", "at_us": 50_000, "count": 3,
         "heat_c": 40.0},
    ],
})

_PRESSURE = FaultScenario.from_dict({
    "name": "pressure",
    "events": [
        {"kind": "deadlock_pressure", "at_us": 40_000, "count": 2,
         "wait_limit_us": 100, "duration_us": 40_000},
    ],
})

_CLOSED_LOOP = FaultScenario.from_dict({
    "name": "closed-loop",
    "events": [
        {"kind": "thermal_storm", "at_us": 30_000, "count": 4,
         "heat_c": 40.0},
        {"kind": "node", "at_us": 40_000, "count": 1,
         "duration_us": 60_000},
        {"kind": "deadlock_pressure", "at_us": 50_000, "count": 2,
         "wait_limit_us": 100, "duration_us": 30_000},
    ],
})


# -- key conservation --------------------------------------------------------


def test_dynamics_free_key_replicates_v1_recipe():
    """A config that never touches the dynamics fields hashes to the
    exact pre-dynamics payload — the seven canonical-optional fields
    are absent, not present-at-default."""
    descriptor = RunDescriptor("ffw", 7, 3, _CONFIG)
    payload = {
        "schema": HASH_SCHEMA_VERSION,
        "model": "foraging_for_work",
        "seed": 7,
        "faults": 3,
        "metric": "joins",
        "config": _v1_config_dict(_CONFIG),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    assert descriptor.key() == hashlib.sha256(
        blob.encode("utf-8")
    ).hexdigest()


def test_dynamics_config_key_replicates_canonical_recipe():
    """Setting a dynamics field joins exactly that field to the payload."""
    config = _CONFIG.replace(dvfs_governor="hysteresis")
    descriptor = RunDescriptor("ffw", 7, 3, config)
    config_payload = dict(_v1_config_dict(config))
    config_payload["dvfs_governor"] = "hysteresis"
    payload = {
        "schema": HASH_SCHEMA_VERSION,
        "model": "foraging_for_work",
        "seed": 7,
        "faults": 3,
        "metric": "joins",
        "config": config_payload,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    assert descriptor.key() == hashlib.sha256(
        blob.encode("utf-8")
    ).hexdigest()


@pytest.mark.parametrize("changes", [
    {"dvfs_governor": "hysteresis"},
    {"dvfs_governor": "threshold-throttle"},
    {"governor_hot_c": 65.0},
    {"governor_cool_c": 55.0},
    {"governor_throttle_mhz": 30},
    {"governor_dwell_us": 5_000},
    {"watchdog_recovery": True},
    {"watchdog_timeout_us": 20_000},
])
def test_each_dynamics_field_mints_a_fresh_key(changes):
    base = RunDescriptor("none", 7, 0, _CONFIG).key()
    changed = RunDescriptor(
        "none", 7, 0, _CONFIG.replace(**changes)
    ).key()
    assert changed != base


def test_defaulted_dynamics_fields_conserve_the_key():
    """Spelling out the defaults explicitly is hash-invisible."""
    explicit = _CONFIG.replace(
        dvfs_governor="none", watchdog_recovery=False,
        watchdog_timeout_us=100_000, governor_hot_c=70.0,
    )
    assert (
        RunDescriptor("none", 7, 0, explicit).key()
        == RunDescriptor("none", 7, 0, _CONFIG).key()
    )
    assert explicit.canonical() == _v1_config_dict(explicit)


def test_new_kind_scenarios_hash_apart():
    keys = {
        RunDescriptor("none", 7, 0, _CONFIG, scenario=s).key()
        for s in (_STORM, _PRESSURE, _CLOSED_LOOP, None)
        if s is not None
    }
    keys.add(RunDescriptor("none", 7, 0, _CONFIG).key())
    assert len(keys) == 4


# -- bit-identical repeats ---------------------------------------------------

_DYN_CONFIG = _CONFIG.replace(
    dvfs_governor="hysteresis",
    watchdog_recovery=True,
    watchdog_timeout_us=20_000,
)


@pytest.mark.parametrize(
    "scenario", [_STORM, _PRESSURE, _CLOSED_LOOP],
    ids=lambda s: s.name,
)
def test_dynamics_scenarios_repeat_bit_identically(scenario):
    first = run_single(
        "ffw", seed=7, config=_DYN_CONFIG, scenario=scenario,
        keep_series=True,
    )
    second = run_single(
        "ffw", seed=7, config=_DYN_CONFIG, scenario=scenario,
        keep_series=True,
    )
    assert first.as_row() == second.as_row()
    assert first.noc_stats == second.noc_stats
    assert first.app_stats == second.app_stats
    assert first.series.as_dict() == second.series.as_dict()


def test_dynamics_rows_identical_across_fast_path():
    slow = _DYN_CONFIG.replace(fast_path=False)
    fast_row = run_single(
        "ffw", seed=7, config=_DYN_CONFIG, scenario=_CLOSED_LOOP,
        keep_series=False,
    ).as_row()
    slow_row = run_single(
        "ffw", seed=7, config=slow, scenario=_CLOSED_LOOP,
        keep_series=False,
    ).as_row()
    assert fast_row == slow_row


def test_dynamics_free_run_matches_legacy_row_surface():
    """With every dynamics field at rest, the row/series surface is the
    legacy one — no new columns leak into dynamics-free results."""
    legacy = run_single(
        "ffw", seed=7, faults=3, config=_CONFIG, keep_series=True
    )
    explicit = run_single(
        "ffw", seed=7, faults=3,
        config=_CONFIG.replace(dvfs_governor="none"),
        keep_series=True,
    )
    row = legacy.as_row()
    for column in (
        "throttle_events", "autonomous_recoveries", "deadlock_drops",
        "governor",
    ):
        assert column not in row
    assert explicit.as_row() == row
    data = legacy.series.as_dict()
    assert explicit.series.as_dict() == data
    assert "throttle_events" not in data


# -- the closed-loop recovery race -------------------------------------------


def _race_platform(watchdog_timeout_us):
    config = _CONFIG.replace(
        watchdog_recovery=True, watchdog_timeout_us=watchdog_timeout_us
    )
    platform = CenturionPlatform(config, model_name="ffw", seed=7)
    platform.inject_scenario({
        "name": "race",
        "events": [
            {"kind": "node", "at_us": 60_000, "victims": [5],
             "duration_us": 50_000},
        ],
    })
    platform.run()
    return platform


def test_watchdog_wins_race_exactly_once_and_deterministically():
    """Scripted recovery is due at 110 ms; a 20 ms watchdog fires first.
    The node recovers exactly once, at the watchdog's time, and that
    time repeats exactly."""
    times = []
    for _ in range(2):
        platform = _race_platform(watchdog_timeout_us=20_000)
        recovered = platform.controller.faults_recovered
        assert len(recovered) == 1
        recovered_at = recovered[0][0]
        assert 60_000 < recovered_at < 110_000
        assert platform.dynamics.autonomous_recoveries == 1
        assert platform.pes[5].watchdog.expirations == 1
        assert not platform.pes[5].halted
        times.append(recovered_at)
    assert times[0] == times[1]


def test_scripted_recovery_wins_race_and_watchdog_stays_quiet():
    """With a watchdog slower than the scripted duration, the scripted
    path recovers at exactly 110 ms and the watchdog observation path
    reads a healthy re-kicked node — zero expirations counted."""
    platform = _race_platform(watchdog_timeout_us=80_000)
    recovered = platform.controller.faults_recovered
    assert len(recovered) == 1
    assert recovered[0][0] == 110_000
    assert platform.dynamics.autonomous_recoveries == 0
    assert platform.pes[5].watchdog.expirations == 0


# -- the governors campaign axis ---------------------------------------------


def _axis_spec(**changes):
    base = dict(
        name="governor-axis",
        models=("none", "ffw"),
        seeds=(7, 8),
        fault_counts=(0, 2),
        config=_CONFIG,
        governors=("none", "hysteresis"),
    )
    base.update(changes)
    return CampaignSpec(**base)


def test_governor_axis_multiplies_size_and_expansion():
    spec = _axis_spec()
    cells = spec.expand()
    assert spec.size() == 2 * 2 * 2 * 2
    assert len(cells) == spec.size()
    governors = [cell.config.dvfs_governor for cell in cells]
    # Model-major, governor next: each model sweeps the whole fault axis
    # under "none" before repeating it under "hysteresis".
    assert governors == (["none"] * 4 + ["hysteresis"] * 4) * 2
    assert len({cell.key() for cell in cells}) == len(cells)


def test_empty_governor_axis_expands_byte_identically():
    with_axis = _axis_spec(governors=()).expand()
    without = CampaignSpec(
        name="governor-axis", models=("none", "ffw"), seeds=(7, 8),
        fault_counts=(0, 2), config=_CONFIG,
    ).expand()
    assert [c.key() for c in with_axis] == [c.key() for c in without]


def test_governor_axis_round_trips_through_dict():
    spec = _axis_spec()
    clone = CampaignSpec.from_dict(spec.to_dict())
    assert clone == spec
    assert clone.to_dict() == spec.to_dict()
    assert [c.key() for c in clone.expand()] == [
        c.key() for c in spec.expand()
    ]


def test_legacy_spec_dict_has_no_governor_key():
    spec = _axis_spec(governors=())
    data = spec.to_dict()
    assert "governors" not in data
    assert "dvfs_governor" not in data["config"]


def test_unknown_governor_rejected():
    with pytest.raises(ValueError):
        _axis_spec(governors=("turbo",))


def test_duplicate_governors_rejected():
    with pytest.raises(ValueError):
        _axis_spec(governors=("hysteresis", "hysteresis"))
