"""The generalised workload interpreter.

:class:`GraphWorkload` executes any compiled :class:`WorkloadSpec` —
pipelines, trees, shuffles, DAGs with fan-in > 2 — behind the exact
PE-facing surface of the legacy :class:`~repro.app.workload.
ForkJoinWorkload`. Everything graph-shaped was resolved by the compiler
(branch bases, join widths, identity edges); the runtime is a small
fixed machine:

* **generation** — a source PE's periodic process ticks at the base
  arrival period; the arrival shape gates which ticks emit (returning
  no packets leaves the PE's sequence untouched, keeping instance
  numbering dense). Sequential sources cycle one emission slot per
  tick; multicast sources emit every slot of an instance per stretched
  tick.
* **forwarding** — a pass-through execution re-emits along each
  outgoing edge, expanding its branch number through the edge's
  ``(base, fanout)`` block; identity edges preserve the branch verbatim.
* **joins** — branch bookkeeping identical to the legacy class
  (straggler and duplicate guards, completed-instance memory, pruning).

Determinism: the built-in ``fork_join`` spec makes *zero* draws from
the two workload RNG streams (constant arrivals, fixed service times),
so every other stream — and therefore the whole simulation — is
byte-identical to the legacy path; pinned by
``tests/integration/test_workload_determinism.py``.
"""

from repro.noc.packet import Packet
from repro.app.workloads.arrivals import (
    ARRIVAL_CONSTANT, ARRIVAL_STREAM, SERVICE_STREAM,
)
from repro.app.workloads.compiler import CompiledWorkload, compile_workload
from repro.app.workloads.protocol import Workload


class GraphWorkload(Workload):
    """Interpret a compiled workload spec as a platform application.

    Parameters
    ----------
    sim:
        Simulator (time source + named RNG streams).
    compiled:
        A :class:`~repro.app.workloads.compiler.CompiledWorkload`, or
        anything :func:`~repro.app.workloads.compiler.compile_workload`
        accepts (spec, dict, builtin name, JSON path).
    """

    def __init__(self, sim, compiled):
        if not isinstance(compiled, CompiledWorkload):
            compiled = compile_workload(compiled)
        self.sim = sim
        self.compiled = compiled
        self.spec = compiled.spec
        self.graph = compiled.graph
        self.packet_flits = self.spec.packet_flits
        self.multicast = self.spec.multicast
        self.per_task_series = self.spec.per_task_series
        # Graphs without a join still need a completion counter for the
        # paper's throughput metric: terminal-task executions stand in.
        self._terminal_joins = not any(t.join for t in self.spec.tasks)
        self._pending_joins = {}
        self._completed_joins = set()
        # Per-source-node base-tick counters for arrival gating. Kept
        # separate from the PE's generation sequence, which only
        # advances on ticks that actually emit.
        self._ticks = {}
        self._arrival_rng = None
        self._service_rng = None
        # Statistics — same shape as the legacy application.
        self.generated = 0
        self.executions_by_task = {tid: 0 for tid in self.graph.task_ids()}
        self.joins = 0
        self.duplicate_branches = 0
        self.results_fed_back = 0

    # -- PE-facing API -----------------------------------------------------

    def generation_period(self, task_id):
        """Base arrival period of a source (stretched under multicast so
        average demand matches sequential emission), else ``None``."""
        spec = self.compiled.specs.get(task_id)
        if spec is None or spec.arrival is None:
            return None
        period = spec.arrival.period_us
        if self.multicast:
            period *= max(1, len(self.compiled.source_slots[task_id]))
        return period

    def service_time(self, task_id):
        """Per-execution service time; draws from the dedicated
        ``workload-service`` stream only when the task declares a
        distribution."""
        spec = self.compiled.specs.get(task_id)
        if spec is None:
            return self.graph.task(task_id).service_us
        base = spec.service_us
        if spec.service_dist == "uniform":
            rng = self._service_stream()
            spread = spec.service_spread
            return max(1.0, base * (1.0 + rng.uniform(-spread, spread)))
        if spec.service_dist == "exponential":
            rng = self._service_stream()
            return max(1.0, rng.expovariate(1.0 / base))
        return base

    def packets_for_generation(self, pe):
        """Packets a source node emits on one generation tick.

        The arrival shape gates the tick first (burst/diurnal shapes may
        skip it entirely, which also leaves the PE's sequence counter
        untouched); emitting ticks then cycle the compiled emission
        slots — one slot per tick sequentially, all slots of an instance
        per stretched tick under multicast.
        """
        spec = self.compiled.specs.get(pe.task_id)
        if spec is None or spec.arrival is None:
            return []
        slots = self.compiled.source_slots.get(pe.task_id) or []
        if not slots:
            return []
        arrival = spec.arrival
        if arrival.shape != ARRIVAL_CONSTANT:
            tick = self._ticks.get(pe.node_id, 0)
            self._ticks[pe.node_id] = tick + 1
            rng = self._arrival_stream() if arrival.needs_rng() else None
            if not arrival.emits(tick, self.sim.now, rng):
                return []
        seq = pe._gen_seq
        if self.multicast:
            instance = (pe.node_id, seq)
            packets = [
                self._make_packet(pe.node_id, spec, dest, instance, branch)
                for dest, branch in slots
            ]
            self.generated += len(packets)
            return packets
        instance = (pe.node_id, seq // len(slots))
        dest, branch = slots[seq % len(slots)]
        self.generated += 1
        return [self._make_packet(pe.node_id, spec, dest, instance, branch)]

    def packets_after_execution(self, pe, packet):
        """Packets emitted after ``pe`` executed ``packet``: joins go
        through branch bookkeeping, sources and terminals absorb,
        pass-through tasks forward along every compiled edge."""
        spec = self.compiled.specs.get(pe.task_id)
        if spec is None:
            return []
        self.executions_by_task[spec.task_id] = (
            self.executions_by_task.get(spec.task_id, 0) + 1
        )
        if spec.join:
            return self._handle_join(pe, spec, packet)
        if spec.arrival is not None or not spec.downstream:
            # Sources emit on generation ticks only (their executions
            # sink fed-back results); terminals absorb.
            if self._terminal_joins and not spec.downstream:
                self.joins += 1
            return []
        out = []
        for edge in self.compiled.out_edges[spec.task_id]:
            if edge.identity:
                out.append(self._make_packet(
                    pe.node_id, spec, edge.dest, packet.instance,
                    packet.branch,
                ))
                continue
            old = packet.branch if isinstance(packet.branch, int) else 0
            for j in range(edge.fanout):
                out.append(self._make_packet(
                    pe.node_id, spec, edge.dest, packet.instance,
                    edge.base + old * edge.fanout + j,
                ))
        return out

    # -- join bookkeeping --------------------------------------------------

    def _handle_join(self, pe, spec, packet):
        instance = packet.instance
        if instance is None:
            return []
        if instance in self._completed_joins:
            # Straggler branch re-delivered after its instance joined;
            # it must not re-open the instance.
            self.duplicate_branches += 1
            return []
        branches = self._pending_joins.setdefault(instance, set())
        if packet.branch in branches:
            self.duplicate_branches += 1
            return []
        branches.add(packet.branch)
        if len(branches) < self.compiled.in_width[spec.task_id]:
            return []
        del self._pending_joins[instance]
        self._completed_joins.add(instance)
        self.joins += 1
        edges = self.compiled.out_edges[spec.task_id]
        if not edges:
            return []
        self.results_fed_back += 1
        out = []
        for edge in edges:
            if edge.identity:
                out.append(self._make_packet(
                    pe.node_id, spec, edge.dest, instance, None,
                ))
                continue
            for j in range(edge.fanout):
                out.append(self._make_packet(
                    pe.node_id, spec, edge.dest, instance, edge.base + j,
                ))
        return out

    def _make_packet(self, node_id, spec, dest, instance, branch):
        now = self.sim.now
        deadline = (
            now + spec.deadline_us if spec.deadline_us is not None else None
        )
        return Packet(
            src_node=node_id,
            dest_task=dest,
            size_flits=self.packet_flits,
            created_at=now,
            instance=instance,
            branch=branch,
            deadline=deadline,
        )

    # -- RNG streams -------------------------------------------------------

    def _arrival_stream(self):
        if self._arrival_rng is None:
            self._arrival_rng = self.sim.rng.stream(ARRIVAL_STREAM)
        return self._arrival_rng

    def _service_stream(self):
        if self._service_rng is None:
            self._service_rng = self.sim.rng.stream(SERVICE_STREAM)
        return self._service_rng

    # -- introspection -----------------------------------------------------

    def demand_weights(self):
        """Steady-state compute demand per task (for load-aware mapping)."""
        return self.compiled.demand_weights()

    @property
    def pending_join_count(self):
        return len(self._pending_joins)

    def prune_stale_joins(self, older_than_instances=50_000):
        """Bound join-state growth (identical policy to the legacy app:
        instances keyed ``(source node, sequence)``, entries lagging the
        newest sequence by more than the window are dropped)."""
        if not self._pending_joins and not self._completed_joins:
            return 0
        keys = list(self._pending_joins) + list(self._completed_joins)
        newest = max(seq for (_node, seq) in keys)
        stale = [
            key for key in self._pending_joins
            if newest - key[1] > older_than_instances
        ]
        for key in stale:
            del self._pending_joins[key]
        self._completed_joins = {
            key for key in self._completed_joins
            if newest - key[1] <= older_than_instances
        }
        return len(stale)

    def sink_task_executions(self):
        """Executions completed by the sink tasks (joins, or terminal
        tasks for join-free graphs)."""
        return sum(
            self.executions_by_task.get(tid, 0)
            for tid in self.compiled.sink_ids
        )

    def source_generations(self):
        """Packets generated by source tasks so far."""
        return self.generated

    def stats(self):
        """Snapshot of all application counters (legacy-shaped)."""
        return {
            "generated": self.generated,
            "executions_by_task": dict(self.executions_by_task),
            "joins": self.joins,
            "pending_joins": self.pending_join_count,
            "duplicate_branches": self.duplicate_branches,
            "results_fed_back": self.results_fed_back,
        }

    def __repr__(self):
        return "GraphWorkload({!r}, generated={}, joins={})".format(
            self.spec.name, self.generated, self.joins
        )
