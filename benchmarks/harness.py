"""Shared helpers for the benchmark suite.

Environment knobs
-----------------
REPRO_RUNS
    Independent seeded runs per (model, fault-count) cell.  Default 15;
    the paper uses 100 — set ``REPRO_RUNS=100`` (and expect roughly an
    hour on one core) for the full-fidelity sweep.
REPRO_SEED_BASE
    First seed of the canonical seed list (default 1000).
"""

import os

from repro.experiments.runner import default_seeds, run_batch

#: Paper model set, in table order.
MODELS = ("none", "network_interaction", "foraging_for_work")

#: Paper fault counts for Table II.
TABLE2_FAULTS = (0, 2, 4, 8, 16, 32)


def runs_per_cell(default=15):
    return int(os.environ.get("REPRO_RUNS", str(default)))


def seed_base():
    return int(os.environ.get("REPRO_SEED_BASE", "1000"))


def gather_zero_fault(config, runs=None):
    """Zero-fault result lists per model (Table I input)."""
    seeds = default_seeds(runs or runs_per_cell(), base=seed_base())
    return {
        model: run_batch(model, seeds, faults=0, config=config)
        for model in MODELS
    }


def gather_faulted(config, fault_counts=TABLE2_FAULTS, runs=None):
    """Result lists per (model, fault count) (Table II input)."""
    seeds = default_seeds(runs or runs_per_cell(), base=seed_base())
    results = {}
    for model in MODELS:
        for faults in fault_counts:
            results[(model, faults)] = run_batch(
                model, seeds, faults=faults, config=config
            )
    return results
