PYTHON ?= python

# Keep in sync with .github/workflows/ci.yml and pyproject.toml.
RUFF_VERSION ?= 0.8.4

# Tier-1 test suite (the CI gate).
test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

# Coverage gate (CI `coverage` job): the tier-1 suite must cover at
# least 80% of src/repro.  Needs pytest-cov (CI installs it; locally:
# pip install pytest-cov).
coverage:
	@PYTHONPATH=src $(PYTHON) -c "import pytest_cov" 2>/dev/null || { \
		echo "pytest-cov not found — install with: pip install pytest-cov"; \
		exit 1; }
	PYTHONPATH=src $(PYTHON) -m pytest -q --cov=repro \
		--cov-report=term-missing:skip-covered --cov-fail-under=80

# Static checks; ruff configuration lives in pyproject.toml.  The docs
# link check (every relative link in README.md + docs/*.md must resolve)
# rides along — a moved file breaks lint, not the docs.
lint:
	@command -v ruff >/dev/null 2>&1 || { \
		echo "ruff not found — install with: pip install ruff==$(RUFF_VERSION)"; \
		exit 1; }
	ruff check .
	$(PYTHON) tools/check_doc_links.py

# Microbenchmarks + short sweep; exits non-zero if the gated benchmark
# (test_small_platform_run) regresses >25% against BENCH_micro.json.
bench:
	$(PYTHON) -m benchmarks.harness --micro

# Refresh the checked-in perf baseline after an intentional change.
bench-baseline:
	$(PYTHON) -m benchmarks.harness --micro --update-baseline

# Campaign store gates: (1) resume — a 2-model x 2-seed campaign cold
# then resumed must re-execute zero simulations bit-identically; (2)
# cross-campaign dedup (store v2) — a table2-subset sharing a store root
# with a prior table1-subset must reuse every shared zero-fault cell
# through the dedup index (0 executed shared cells, byte-identical rows).
campaign-smoke:
	$(PYTHON) -m benchmarks.harness --campaign-smoke

# Closed-loop self-healing gate: a tiny hysteresis-governed run with a
# thermal storm must throttle, restore every throttle by the horizon,
# recover the killed node through the watchdog path exactly once, and
# repeat bit-identically.
dynamics-smoke:
	$(PYTHON) -m benchmarks.harness --dynamics-smoke

# Event-timer gate: ticked and event AIM timer modes must be
# bit-identical on a faulted FFW cell whose timeout machinery actually
# fires, an idle-heavy run must dispatch >= 3x fewer kernel events in
# event mode, and campaign cell keys must stay conserved.
timer-smoke:
	$(PYTHON) -m benchmarks.harness --timer-smoke

# Declarative-workload gate: a burst workload must run and repeat
# bit-identically, the builtin fork_join spec must reproduce the legacy
# application exactly, workload-free cell keys must replicate the
# pre-workload hash recipe, and the capacity lint must flag an arrival
# rate the platform cannot sustain.
workload-smoke:
	$(PYTHON) -m benchmarks.harness --workload-smoke

# Run every examples/*.py script; fail on any non-zero exit.
examples-smoke:
	$(PYTHON) -m benchmarks.harness --examples-smoke

# Sweep-scale analysis gate: `campaign report` must emit a
# self-contained page that re-renders byte-identically, and `campaign
# compare` must flag an injected regression with a non-zero exit.
report-smoke:
	$(PYTHON) -m benchmarks.harness --report-smoke

# Sweep-daemon gate: boot `campaign serve` on an ephemeral port, submit
# a 2x2 spec over HTTP (executes every cell), resubmit it and submit an
# overlapping tenant (both must dedup to zero executed sims), check
# /healthz, and shut down cleanly with the dedup index persisted.
serve-smoke:
	$(PYTHON) -m benchmarks.harness --serve-smoke

.PHONY: test lint coverage bench bench-baseline campaign-smoke \
	dynamics-smoke timer-smoke workload-smoke examples-smoke \
	report-smoke serve-smoke
