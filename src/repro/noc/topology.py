"""Mesh grid topology.

Centurion-V6 is an 8×16 grid of 128 nodes.  We use ``width`` columns (x) and
``height`` rows (y), with node id ``y * width + x``.  Row ``y = 0`` is the
*top* row — the one whose North ports connect to the Experiment Controller —
and the North direction decreases ``y``.
"""

NORTH = "N"
EAST = "E"
SOUTH = "S"
WEST = "W"
INTERNAL = "L"

#: The four mesh directions in the fixed arbitration order used by routers.
DIRECTIONS = (NORTH, EAST, SOUTH, WEST)

_OFFSETS = {
    NORTH: (0, -1),
    EAST: (1, 0),
    SOUTH: (0, 1),
    WEST: (-1, 0),
}

_OPPOSITE = {NORTH: SOUTH, SOUTH: NORTH, EAST: WEST, WEST: EAST}

#: Shared per-shape caches: table sweeps construct hundreds of identically
#: shaped meshes, so adjacency and coordinate tables are computed once per
#: ``(width, height)`` and shared between instances (they are read-only).
_ADJACENCY_CACHE = {}
_COORDS_CACHE = {}


def opposite(direction):
    """The reverse mesh direction (``N``↔``S``, ``E``↔``W``)."""
    return _OPPOSITE[direction]


def normalize_edge(a, b):
    """Canonical undirected-edge id ``(lo, hi)`` for the mesh edge a — b.

    Link-fault state (network, routing policy, fault injector) keys
    edges by this one normalisation, so an edge failure always takes
    out both channel directions regardless of endpoint order.
    """
    return (a, b) if a <= b else (b, a)


class MeshTopology:
    """A ``width × height`` 2D mesh.

    Provides coordinate/id conversion, neighbourhood queries and Manhattan
    distances.  All methods validate their inputs so that routing bugs fail
    loudly instead of wrapping around the grid.
    """

    def __init__(self, width=16, height=8):
        if width < 1 or height < 1:
            raise ValueError(
                "mesh must be at least 1x1, got {}x{}".format(width, height)
            )
        self.width = width
        self.height = height
        key = (width, height)
        coords = _COORDS_CACHE.get(key)
        if coords is None:
            coords = _COORDS_CACHE[key] = [
                (n % width, n // width) for n in range(width * height)
            ]
        self._coords = coords
        adjacency = _ADJACENCY_CACHE.get(key)
        if adjacency is None:
            adjacency = _ADJACENCY_CACHE[key] = self._build_adjacency()
        self._adjacency = adjacency

    def _build_adjacency(self):
        """Per-node ``{direction: neighbor-or-None}`` for all directions."""
        table = []
        for node_id in range(self.width * self.height):
            x, y = self._coords[node_id]
            hops = {}
            for direction, (dx, dy) in _OFFSETS.items():
                nx, ny = x + dx, y + dy
                if 0 <= nx < self.width and 0 <= ny < self.height:
                    hops[direction] = ny * self.width + nx
                else:
                    hops[direction] = None
            table.append(hops)
        return table

    # -- id / coordinate conversion ----------------------------------------

    @property
    def num_nodes(self):
        return self.width * self.height

    def node_ids(self):
        """All node ids in row-major order."""
        return range(self.num_nodes)

    def coords(self, node_id):
        """``(x, y)`` of a node id."""
        if 0 <= node_id < len(self._coords):
            return self._coords[node_id]
        self._check_id(node_id)

    def node_id(self, x, y):
        """Node id at coordinates ``(x, y)``."""
        self._check_xy(x, y)
        return y * self.width + x

    def in_bounds(self, x, y):
        """True when ``(x, y)`` lies inside the mesh."""
        return 0 <= x < self.width and 0 <= y < self.height

    # -- neighbourhood -------------------------------------------------------

    def neighbor(self, node_id, direction):
        """Neighbour id in ``direction`` or ``None`` at the mesh edge."""
        if 0 <= node_id < len(self._adjacency):
            return self._adjacency[node_id][direction]
        self._check_id(node_id)

    def neighbors(self, node_id):
        """Mapping of direction -> neighbour id (edges omitted)."""
        if not 0 <= node_id < len(self._adjacency):
            self._check_id(node_id)
        return {
            direction: other
            for direction, other in self._adjacency[node_id].items()
            if other is not None
        }

    def direction_to(self, src, dst):
        """Mesh direction from ``src`` to an *adjacent* ``dst``.

        Raises ``ValueError`` if the nodes are not neighbours.
        """
        for direction in DIRECTIONS:
            if self.neighbor(src, direction) == dst:
                return direction
        raise ValueError(
            "nodes {} and {} are not adjacent".format(src, dst)
        )

    # -- metrics --------------------------------------------------------------

    def manhattan(self, a, b):
        """Manhattan (hop-count) distance between two node ids."""
        ax, ay = self.coords(a)
        bx, by = self.coords(b)
        return abs(ax - bx) + abs(ay - by)

    def top_row(self):
        """Node ids of the top row (y = 0), West to East."""
        return [self.node_id(x, 0) for x in range(self.width)]

    # -- validation -------------------------------------------------------------

    def _check_id(self, node_id):
        if not 0 <= node_id < self.num_nodes:
            raise ValueError(
                "node id {} outside mesh of {} nodes".format(
                    node_id, self.num_nodes
                )
            )

    def _check_xy(self, x, y):
        if not self.in_bounds(x, y):
            raise ValueError(
                "({}, {}) outside {}x{} mesh".format(
                    x, y, self.width, self.height
                )
            )

    def __repr__(self):
        return "MeshTopology({}x{}, {} nodes)".format(
            self.width, self.height, self.num_nodes
        )
