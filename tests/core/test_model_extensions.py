"""Tests for the four extension models (Figure 1 classes 1-4)."""

from repro.core.models.information_transfer import InformationTransferModel
from repro.core.models.response_threshold import ResponseThresholdModel
from repro.core.models.self_reinforcement import SelfReinforcementModel
from repro.core.models.social_inhibition import SocialInhibitionModel
from repro.noc.packet import Packet


def transit(task):
    packet = Packet(0, dest_task=task)
    packet.hops = 1
    return packet


def feed(model, aim, task, count):
    for _ in range(count):
        model.on_packet_routed(aim, transit(task), to_internal=False,
                               injected=False)


class TestResponseThreshold:
    def test_innate_thresholds_within_range(self, stub_aim):
        model = ResponseThresholdModel(
            (1, 2, 3), threshold_low=10, threshold_high=20
        )
        model.bind(stub_aim)
        assert set(model.innate_thresholds) == {1, 2, 3}
        assert all(10 <= t <= 20 for t in model.innate_thresholds.values())

    def test_sustained_stimulus_triggers_engagement(self, stub_aim):
        model = ResponseThresholdModel(
            (1, 2, 3), threshold_low=5, threshold_high=5, leak_per_tick=0
        )
        model.bind(stub_aim)
        feed(model, stub_aim, task=2, count=6)
        assert stub_aim.switches == [(0, 2)]

    def test_leak_suppresses_slow_trickle(self, stub_aim):
        model = ResponseThresholdModel(
            (1, 2, 3), threshold_low=5, threshold_high=5, leak_per_tick=2
        )
        model.bind(stub_aim)
        for i in range(20):
            feed(model, stub_aim, task=2, count=1)
            model.on_tick(stub_aim, now=i * 1000)  # leak between packets
        assert stub_aim.switches == []

    def test_thresholds_vary_across_nodes(self, sim):
        from tests.core.conftest import StubAim

        thresholds = []
        for node in range(6):
            aim = StubAim(sim, node_id=node)
            model = ResponseThresholdModel((1, 2, 3))
            model.bind(aim)
            thresholds.append(tuple(model.innate_thresholds.values()))
        assert len(set(thresholds)) > 1  # genetic variation

    def test_stimulus_levels_view(self, stub_aim):
        model = ResponseThresholdModel((1, 2), threshold_low=50,
                                       threshold_high=50)
        model.bind(stub_aim)
        feed(model, stub_aim, task=2, count=3)
        assert model.stimulus_levels() == {1: 0, 2: 3}


class TestInformationTransfer:
    def test_neighbor_providers_inhibit_stimulus(self, stub_aim):
        stub_aim.monitors.values["neighbor_tasks"] = {"N": 2, "E": 2}
        model = InformationTransferModel(
            (1, 2, 3), threshold_low=5, threshold_high=5,
            leak_per_tick=0, neighbor_inhibition=1,
        )
        model.bind(stub_aim)
        feed(model, stub_aim, task=2, count=4)
        model.on_tick(stub_aim, now=1000)  # inhibition: -2 on task 2
        feed(model, stub_aim, task=2, count=2)
        # 4 - 2 + 2 = 4 < 5: still below the threshold.
        assert stub_aim.switches == []
        feed(model, stub_aim, task=2, count=2)
        assert stub_aim.switches == [(0, 2)]

    def test_none_neighbors_ignored(self, stub_aim):
        stub_aim.monitors.values["neighbor_tasks"] = {"N": None}
        model = InformationTransferModel((1, 2, 3))
        model.bind(stub_aim)
        model.on_tick(stub_aim, now=1000)  # must not raise


class TestSelfReinforcement:
    def test_practice_lowers_threshold(self, stub_aim):
        model = SelfReinforcementModel(
            (1, 2), threshold_low=20, threshold_high=20, reinforcement=2
        )
        model.bind(stub_aim)
        for _ in range(5):
            model.on_execution_complete(stub_aim, task_id=1)
        unit = model.pathway.thresholds["task-1"]
        assert unit.threshold == 10
        assert model.specialisation()[1] == 10

    def test_threshold_floor(self, stub_aim):
        model = SelfReinforcementModel(
            (1,), threshold_low=10, threshold_high=10, reinforcement=5
        )
        model.bind(stub_aim)
        for _ in range(10):
            model.on_execution_complete(stub_aim, task_id=1)
        assert (
            model.pathway.thresholds["task-1"].threshold
            == SelfReinforcementModel.MIN_THRESHOLD
        )

    def test_disuse_forgets_back_to_innate(self, stub_aim):
        model = SelfReinforcementModel(
            (1, 2), threshold_low=20, threshold_high=20,
            reinforcement=4, forgetting=2, forgetting_period_ticks=1,
        )
        model.bind(stub_aim)
        model.on_execution_complete(stub_aim, task_id=2)  # 20 -> 16
        stub_aim._task = 1  # now practising something else
        for i in range(10):
            model.on_tick(stub_aim, now=i * 1000)
        assert model.pathway.thresholds["task-2"].threshold == 20

    def test_forgetting_never_exceeds_innate(self, stub_aim):
        model = SelfReinforcementModel(
            (1, 2), threshold_low=20, threshold_high=20,
            forgetting=50, forgetting_period_ticks=1,
        )
        model.bind(stub_aim)
        stub_aim._task = 1
        for i in range(5):
            model.on_tick(stub_aim, now=i * 1000)
        assert model.pathway.thresholds["task-2"].threshold == 20


class TestSocialInhibition:
    def test_crowding_raises_threshold(self, stub_aim):
        stub_aim.monitors.values["neighbor_tasks"] = {
            "N": 2, "E": 2, "S": 2,
        }
        model = SocialInhibitionModel(
            (1, 2, 3), threshold_low=10, threshold_high=10,
            crowd_size=2, crowd_penalty=15,
        )
        model.bind(stub_aim)
        model.on_tick(stub_aim, now=1000)
        assert model.crowded_tasks() == {2}
        assert model.pathway.thresholds["task-2"].threshold == 25

    def test_crowd_dispersal_restores_innate(self, stub_aim):
        stub_aim.monitors.values["neighbor_tasks"] = {"N": 2, "E": 2}
        model = SocialInhibitionModel(
            (1, 2), threshold_low=10, threshold_high=10,
            crowd_size=2, crowd_penalty=15,
        )
        model.bind(stub_aim)
        model.on_tick(stub_aim, now=1000)
        assert model.crowded_tasks() == {2}
        stub_aim.monitors.values["neighbor_tasks"] = {"N": 1, "E": 2}
        model.on_tick(stub_aim, now=2000)
        assert model.crowded_tasks() == set()
        assert model.pathway.thresholds["task-2"].threshold == 10

    def test_crowded_task_needs_stronger_stimulus(self, stub_aim):
        stub_aim.monitors.values["neighbor_tasks"] = {"N": 2, "E": 2}
        model = SocialInhibitionModel(
            (1, 2), threshold_low=3, threshold_high=3,
            leak_per_tick=0, neighbor_inhibition=0,
            crowd_size=2, crowd_penalty=10,
        )
        model.bind(stub_aim)
        model.on_tick(stub_aim, now=1000)
        feed(model, stub_aim, task=2, count=4)  # above innate, below crowd
        assert stub_aim.switches == []
        feed(model, stub_aim, task=2, count=10)
        assert stub_aim.switches == [(0, 2)]
