"""Tests for the persistent JSONL result store."""

import json

import pytest

from repro.campaign.spec import RunDescriptor
from repro.campaign.store import ResultStore, decode_result, encode_result
from repro.experiments.runner import run_single
from repro.platform.config import PlatformConfig

CONFIG = PlatformConfig.small()


@pytest.fixture(scope="module")
def descriptor():
    return RunDescriptor("none", 7, 2, CONFIG, keep_series=True)


@pytest.fixture(scope="module")
def result(descriptor):
    return run_single(*descriptor.job())


class TestRoundTrip:
    def test_scalar_row_bit_identical(self, descriptor, result):
        record = json.loads(json.dumps(encode_result(descriptor, result)))
        assert decode_result(record).as_row() == result.as_row()

    def test_stats_survive(self, descriptor, result):
        record = json.loads(json.dumps(encode_result(descriptor, result)))
        restored = decode_result(record)
        assert restored.noc_stats == result.noc_stats
        assert restored.app_stats == result.app_stats

    def test_series_survives_with_int_census_keys(self, descriptor, result):
        record = json.loads(json.dumps(encode_result(descriptor, result)))
        series = decode_result(record).series
        assert series.as_dict() == result.series.as_dict()
        assert len(series) == len(result.series)
        assert series.task_ids == tuple(sorted(result.series.census))


class TestResultStore:
    def test_persists_across_instances(self, tmp_path, descriptor, result):
        store = ResultStore(str(tmp_path))
        store.save_result(descriptor, result)
        store.close()
        reopened = ResultStore(str(tmp_path))
        assert reopened.has_result(descriptor)
        assert reopened.load_result(descriptor).as_row() == result.as_row()

    def test_missing_key_is_a_miss(self, tmp_path, descriptor):
        store = ResultStore(str(tmp_path))
        assert not store.has_result(descriptor)
        assert descriptor.key() not in store

    def test_series_request_rejects_bare_record(self, tmp_path, result):
        bare = RunDescriptor("none", 7, 2, CONFIG, keep_series=False)
        kept = RunDescriptor("none", 7, 2, CONFIG, keep_series=True)
        stripped = run_single(*bare.job())
        store = ResultStore(str(tmp_path))
        store.save_result(bare, stripped)
        assert store.has_result(bare)
        assert not store.has_result(kept)  # same key, no stored series

    def test_last_record_wins(self, tmp_path, descriptor, result):
        store = ResultStore(str(tmp_path))
        store.save_result(descriptor, result)
        store.save_result(descriptor, result)
        store.close()
        reopened = ResultStore(str(tmp_path))
        assert len(reopened) == 1

    def test_torn_final_line_is_ignored(self, tmp_path, descriptor, result):
        store = ResultStore(str(tmp_path))
        store.save_result(descriptor, result)
        store.close()
        with open(store.path, "a") as handle:
            handle.write('{"key": "interrupted-wr')  # crash mid-append
        reopened = ResultStore(str(tmp_path))
        assert len(reopened) == 1
        assert reopened.has_result(descriptor)


class TestWorkerStreams:
    def test_worker_store_appends_to_private_stream(self, tmp_path,
                                                    descriptor, result):
        store = ResultStore(str(tmp_path), worker=2)
        store.save_result(descriptor, result)
        store.close()
        assert (tmp_path / "results.worker-2.jsonl").exists()
        assert not (tmp_path / "results.jsonl").exists()

    def test_readers_merge_worker_streams(self, tmp_path, descriptor,
                                          result):
        with ResultStore(str(tmp_path), worker=0) as store:
            store.save_result(descriptor, result)
        reader = ResultStore(str(tmp_path))
        assert reader.has_result(descriptor)
        assert reader.load_result(descriptor).as_row() == result.as_row()

    def test_reconcile_folds_streams_byte_identically(self, tmp_path,
                                                      descriptor, result):
        with ResultStore(str(tmp_path), worker=0) as store:
            store.save_result(descriptor, result)
        worker_line = (tmp_path / "results.worker-0.jsonl").read_bytes()
        merged = ResultStore(str(tmp_path))
        assert merged.reconcile() == 1
        assert not (tmp_path / "results.worker-0.jsonl").exists()
        assert (tmp_path / "results.jsonl").read_bytes() == worker_line
        assert ResultStore(str(tmp_path)).has_result(descriptor)

    def test_reconcile_without_streams_is_a_noop(self, tmp_path,
                                                 descriptor, result):
        with ResultStore(str(tmp_path)) as store:
            store.save_result(descriptor, result)
        before = (tmp_path / "results.jsonl").read_bytes()
        store = ResultStore(str(tmp_path))
        assert store.reconcile() == 0
        assert (tmp_path / "results.jsonl").read_bytes() == before

    def test_save_record_requires_key(self, tmp_path):
        store = ResultStore(str(tmp_path))
        with pytest.raises(ValueError):
            store.save_record({"row": {}})
