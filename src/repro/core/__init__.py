"""Social-insect-inspired embedded intelligence (the paper's contribution).

The package mirrors the hardware structure of Figure 2:

* :mod:`repro.core.spikes`, :mod:`repro.core.counters`,
  :mod:`repro.core.comparators`, :mod:`repro.core.thresholds` — the
  PicoBlaze software platform's building blocks: impulse/binary conversion,
  excitatory/inhibitory counters, vector-match comparators and
  threshold decision circuits (Figure 2b);
* :mod:`repro.core.pathways` — composition of those blocks into
  monitor→threshold→knob decision pathways;
* :mod:`repro.core.monitors` / :mod:`repro.core.knobs` — the sense/actuate
  surface of Figure 2a;
* :mod:`repro.core.aim` — the Artificial Intelligence Module that hosts a
  model program on one node;
* :mod:`repro.core.models` — the six division-of-labour model classes of
  Figure 1, including the two the paper evaluates (Network Interaction and
  Foraging for Work).
"""

from repro.core.aim import ArtificialIntelligenceModule
from repro.core.comparators import VectorMatchComparator
from repro.core.counters import SaturatingCounter
from repro.core.pathways import DecisionPathway
from repro.core.spikes import ImpulseLine, SpikeIntegrator, VectorToSpikes
from repro.core.thresholds import ThresholdUnit
from repro.core.models import (
    MODEL_REGISTRY,
    ForagingForWorkModel,
    InformationTransferModel,
    IntelligenceModel,
    NetworkInteractionModel,
    NoIntelligenceModel,
    ResponseThresholdModel,
    SelfReinforcementModel,
    SocialInhibitionModel,
    create_model,
)

__all__ = [
    "ArtificialIntelligenceModule",
    "VectorMatchComparator",
    "SaturatingCounter",
    "DecisionPathway",
    "ImpulseLine",
    "SpikeIntegrator",
    "VectorToSpikes",
    "ThresholdUnit",
    "MODEL_REGISTRY",
    "ForagingForWorkModel",
    "InformationTransferModel",
    "IntelligenceModel",
    "NetworkInteractionModel",
    "NoIntelligenceModel",
    "ResponseThresholdModel",
    "SelfReinforcementModel",
    "SocialInhibitionModel",
    "create_model",
]
