"""Extra controller tests: NoC-face injection behaviour."""

import pytest

from repro.noc.packet import Packet, PacketStatus
from repro.platform.centurion import CenturionPlatform
from repro.platform.config import PlatformConfig


@pytest.fixture
def platform():
    return CenturionPlatform(PlatformConfig.small(), model_name="none",
                             seed=41)


def test_attach_index_rotates_over_interfaces(platform):
    controller = platform.controller
    entries = [
        controller.attach_points[i % len(controller.attach_points)]
        for i in range(8)
    ]
    # Four interfaces used round-robin when callers increment the index.
    assert entries[:4] == list(controller.attach_points)
    assert entries[4:] == list(controller.attach_points)


def test_injection_from_each_interface_delivers(platform):
    packets = []
    for index in range(4):
        packet = Packet(src_node=-1, dest_task=2)
        platform.controller.inject_packet(packet, attach_index=index)
        packets.append(packet)
    platform.sim.run_until(100_000)
    assert all(p.status == PacketStatus.DELIVERED for p in packets)
    assert platform.controller.injected == 4


def test_injection_counts_in_network_stats(platform):
    before = platform.network.stats["sent"]
    platform.controller.inject_packet(Packet(src_node=-1, dest_task=3))
    assert platform.network.stats["sent"] == before + 1


def test_injected_packet_with_unknown_task_drops(platform):
    packet = Packet(src_node=-1, dest_task=99)
    assert not platform.controller.inject_packet(packet)
    assert packet.status == PacketStatus.DROPPED_NO_PROVIDER


def test_injection_into_partially_failed_top_row(platform):
    # Kill one attach-point router; the other interfaces still work.
    victim = platform.controller.attach_points[0]
    platform.controller.inject_fault(victim)
    packet = Packet(src_node=-1, dest_task=2)
    assert not platform.controller.inject_packet(packet, attach_index=0)
    survivor = Packet(src_node=-1, dest_task=2)
    assert platform.controller.inject_packet(survivor, attach_index=1)
    platform.sim.run_until(100_000)
    assert survivor.status == PacketStatus.DELIVERED
