"""Tests for the closed-loop self-healing dynamics seam.

Covers the governor policies in isolation, the platform-level throttle /
restore loop, thermal-storm heat injection, deadlock-pressure claim
arbitration, and watchdog-driven autonomous recovery (including its
idempotence against the scripted recovery path).
"""

import pytest

from repro.platform.centurion import CenturionPlatform
from repro.platform.config import PlatformConfig
from repro.platform.dynamics import (
    HysteresisGovernor,
    ThresholdThrottleGovernor,
    build_governor,
)

SMALL = dict(width=4, height=4, horizon_us=200_000, fault_time_us=100_000)


def _platform(seed=7, model="none", **overrides):
    base = dict(SMALL)
    base.update(overrides)
    return CenturionPlatform(
        PlatformConfig(**base), model_name=model, seed=seed
    )


# -- governor policies -------------------------------------------------------


class TestThresholdThrottleGovernor:
    def test_throttles_above_hot(self):
        gov = ThresholdThrottleGovernor(hot_c=70.0, throttle_mhz=50)
        assert gov.decide(0, 70.5, throttled=False) == "throttle"

    def test_holds_at_or_below_hot(self):
        gov = ThresholdThrottleGovernor(hot_c=70.0, throttle_mhz=50)
        assert gov.decide(0, 70.0, throttled=False) is None
        assert gov.decide(0, 35.0, throttled=False) is None

    def test_restores_at_hot(self):
        gov = ThresholdThrottleGovernor(hot_c=70.0, throttle_mhz=50)
        assert gov.decide(0, 70.0, throttled=True) == "restore"
        assert gov.decide(0, 71.0, throttled=True) is None

    def test_no_dwell(self):
        gov = ThresholdThrottleGovernor(hot_c=70.0, throttle_mhz=50)
        assert gov.earliest_change_us(123) == 123


class TestHysteresisGovernor:
    def _gov(self, dwell=1_000):
        return HysteresisGovernor(
            hot_c=70.0, cool_c=60.0, throttle_mhz=50, dwell_us=dwell
        )

    def test_throttles_above_hot_restores_below_cool(self):
        gov = self._gov(dwell=0)
        assert gov.decide(0, 75.0, throttled=False) == "throttle"
        # Between the thresholds: hold either way.
        assert gov.decide(10, 65.0, throttled=True) is None
        assert gov.decide(20, 60.0, throttled=True) == "restore"

    def test_dwell_blocks_rapid_transitions(self):
        gov = self._gov(dwell=1_000)
        assert gov.decide(0, 75.0, throttled=False) == "throttle"
        # Even a full cool-down cannot restore within the dwell.
        assert gov.decide(999, 40.0, throttled=True) is None
        assert gov.decide(1_000, 40.0, throttled=True) == "restore"

    def test_earliest_change_honours_dwell(self):
        gov = self._gov(dwell=1_000)
        gov.decide(100, 75.0, throttled=False)
        assert gov.earliest_change_us(200) == 1_100
        assert gov.earliest_change_us(5_000) == 5_000

    def test_cool_must_lie_below_hot(self):
        with pytest.raises(ValueError):
            HysteresisGovernor(
                hot_c=70.0, cool_c=70.0, throttle_mhz=50, dwell_us=0
            )


def test_build_governor_factory():
    none = build_governor(PlatformConfig(**SMALL))
    assert none is None
    threshold = build_governor(
        PlatformConfig(dvfs_governor="threshold-throttle", **SMALL)
    )
    assert isinstance(threshold, ThresholdThrottleGovernor)
    hysteresis = build_governor(
        PlatformConfig(dvfs_governor="hysteresis", **SMALL)
    )
    assert isinstance(hysteresis, HysteresisGovernor)
    assert hysteresis.cool_target_c == hysteresis.cool_c


# -- platform wiring ---------------------------------------------------------


def test_governor_none_registers_no_observers():
    platform = _platform()
    assert platform.dynamics.governors == {}
    for pe in platform.pes.values():
        assert platform.dynamics not in pe._observers


def test_governor_registers_one_observer_per_node():
    platform = _platform(dvfs_governor="hysteresis")
    assert set(platform.dynamics.governors) == set(platform.pes)
    for pe in platform.pes.values():
        assert platform.dynamics in pe._observers
    # One fresh governor instance per node, never shared.
    instances = list(platform.dynamics.governors.values())
    assert len(set(map(id, instances))) == len(instances)


def test_thermal_storm_heats_victims_and_throttles():
    platform = _platform(dvfs_governor="hysteresis", model="ffw")
    platform.inject_scenario({
        "name": "storm",
        "events": [
            {"kind": "thermal_storm", "at_us": 50_000, "victims": [5, 6],
             "heat_c": 40.0},
        ],
    })
    platform.run(60_000)
    assert platform.faults.thermal_victims == [5, 6]
    for node in (5, 6):
        assert platform.pes[node].thermal.temperature(50_000) > 70.0
    assert platform.dynamics.throttle_events >= 2
    for node in (5, 6):
        pe = platform.pes[node]
        assert pe.frequency.current_mhz == 50


def test_throttled_nodes_restore_by_cool_crossing():
    platform = _platform(dvfs_governor="hysteresis", model="ffw")
    platform.inject_scenario({
        "name": "storm",
        "events": [
            {"kind": "thermal_storm", "at_us": 50_000, "victims": [5],
             "heat_c": 40.0},
        ],
    })
    platform.run()
    pe = platform.pes[5]
    assert platform.dynamics.throttle_events >= 1
    assert pe.frequency.current_mhz == pe.frequency.nominal_mhz
    assert 5 not in platform.dynamics._throttled


def test_storm_heats_dead_nodes_without_governing_them():
    platform = _platform(dvfs_governor="hysteresis")
    platform.inject_scenario({
        "name": "dead-heat",
        "events": [
            {"kind": "node", "at_us": 10_000, "victims": [5]},
            {"kind": "thermal_storm", "at_us": 20_000, "victims": [5],
             "heat_c": 40.0},
        ],
    })
    platform.run(30_000)
    pe = platform.pes[5]
    assert pe.halted
    # Dead silicon warms too, but the governor never actuates it.
    assert pe.thermal.temperature(20_000) > 70.0
    assert pe.frequency.current_mhz == pe.frequency.nominal_mhz


def test_dynamics_free_run_schedules_nothing():
    platform = _platform()
    platform.run()
    dynamics = platform.dynamics
    assert dynamics.throttle_events == 0
    assert dynamics.autonomous_recoveries == 0
    assert dynamics._next_check == {}
    assert dynamics._wd_due == {}
    for pe in platform.pes.values():
        assert pe.frequency.current_mhz == pe.frequency.nominal_mhz


# -- deadlock pressure -------------------------------------------------------


def test_deadlock_pressure_sets_and_expires():
    platform = _platform()
    platform.inject_scenario({
        "name": "pressure",
        "events": [
            {"kind": "deadlock_pressure", "at_us": 10_000, "victims": [3],
             "wait_limit_us": 500, "duration_us": 20_000},
        ],
    })
    platform.run(40_000)
    assert platform.faults.pressure_victims == [3]
    assert platform.network.deadlock_pressure == {}
    assert (30_000, "deadlock_pressure", 3) in platform.faults.recovered


def test_overlapping_pressures_tightest_limit_governs():
    platform = _platform()
    platform.inject_scenario({
        "name": "overlap",
        "events": [
            {"kind": "deadlock_pressure", "at_us": 10_000, "victims": [3],
             "wait_limit_us": 900, "duration_us": 40_000},
            {"kind": "deadlock_pressure", "at_us": 20_000, "victims": [3],
             "wait_limit_us": 300, "duration_us": 10_000},
        ],
    })
    sim = platform.sim
    network = platform.network
    platform.run(15_000)
    assert network.deadlock_pressure[3] == 900
    platform.run(25_000)
    assert network.deadlock_pressure[3] == 300  # tighter claim wins
    platform.run(35_000)
    assert network.deadlock_pressure[3] == 900  # relaxes to the survivor
    platform.run(55_000)
    assert 3 not in network.deadlock_pressure
    assert sim.now >= 50_000


def test_pressure_drops_waiting_packets():
    """A pressured router drops on waits the global bound tolerates."""
    platform = _platform()
    network = platform.network
    network.set_deadlock_pressure(0, 10)
    link = network.links[(0, 1)]
    link.busy_until = platform.sim.now + 1_000  # wait far above the limit
    from repro.noc.packet import Packet, PacketStatus

    packet = Packet(src_node=0, dest_task=None, created_at=0)
    packet.dest_node = 1
    before = network.stats["dropped_deadlock"]
    assert network._route_step(packet, 0) is None
    assert network.stats["dropped_deadlock"] == before + 1
    assert packet.status == PacketStatus.DROPPED_DEADLOCK


def test_unpressured_wait_still_tolerated():
    """The same wait is tolerated once the pressure is cleared."""
    platform = _platform()
    network = platform.network
    network.set_deadlock_pressure(0, 10)
    network.clear_deadlock_pressure(0)
    link = network.links[(0, 1)]
    link.busy_until = platform.sim.now + 1_000
    from repro.noc.packet import Packet

    packet = Packet(src_node=0, dest_task=None, created_at=0)
    packet.dest_node = 1
    assert network._route_step(packet, 0) is not None
    assert network.stats["dropped_deadlock"] == 0


# -- watchdog-driven autonomous recovery -------------------------------------


def test_watchdog_recovers_killed_node_once():
    platform = _platform(
        watchdog_recovery=True, watchdog_timeout_us=20_000, model="ffw"
    )
    platform.inject_scenario({
        "name": "kill",
        "events": [
            {"kind": "node", "at_us": 60_000, "victims": [5],
             "duration_us": 100_000},
        ],
    })
    platform.run()
    pe = platform.pes[5]
    assert not pe.halted
    assert platform.dynamics.autonomous_recoveries == 1
    # Exactly one recovery total: the scripted path at 160 ms found the
    # node already alive and changed nothing.
    assert len(platform.controller.faults_recovered) == 1
    recovered_at = platform.controller.faults_recovered[0][0]
    assert recovered_at < 160_000
    # The observation went through check_and_count: the expiry the
    # controller acted on is counted on the node's own watchdog.
    assert pe.watchdog.expirations == 1


def test_scripted_recovery_winning_leaves_watchdog_quiet():
    """When scripted recovery lands first, the watchdog check reads a
    healthy (re-kicked) node: no expiry counted, no second recovery."""
    platform = _platform(
        watchdog_recovery=True, watchdog_timeout_us=80_000, model="ffw"
    )
    platform.inject_scenario({
        "name": "kill",
        "events": [
            {"kind": "node", "at_us": 60_000, "victims": [5],
             "duration_us": 10_000},
        ],
    })
    platform.run()
    pe = platform.pes[5]
    assert not pe.halted
    assert platform.dynamics.autonomous_recoveries == 0
    assert len(platform.controller.faults_recovered) == 1
    assert platform.controller.faults_recovered[0][0] == 70_000
    assert pe.watchdog.expirations == 0


def test_watchdog_recovery_off_leaves_scripted_path_alone():
    platform = _platform(model="ffw")
    platform.inject_scenario({
        "name": "kill",
        "events": [
            {"kind": "node", "at_us": 60_000, "victims": [5],
             "duration_us": 100_000},
        ],
    })
    platform.run()
    assert platform.dynamics.autonomous_recoveries == 0
    assert len(platform.controller.faults_recovered) == 1
    assert platform.controller.faults_recovered[0][0] == 160_000


def test_killed_throttled_node_recovers_at_nominal_frequency():
    platform = _platform(
        dvfs_governor="hysteresis", watchdog_recovery=True,
        watchdog_timeout_us=20_000, model="ffw",
    )
    platform.inject_scenario({
        "name": "storm-kill",
        "events": [
            {"kind": "thermal_storm", "at_us": 50_000, "victims": [5],
             "heat_c": 40.0},
            {"kind": "node", "at_us": 51_000, "victims": [5],
             "duration_us": 100_000},
        ],
    })
    platform.run(52_000)
    assert platform.pes[5].halted
    platform.run()
    pe = platform.pes[5]
    assert not pe.halted
    # The reboot cleared the throttle; the node is not stuck at 50 MHz.
    assert pe.frequency.current_mhz == pe.frequency.nominal_mhz
    assert 5 not in platform.dynamics._throttled


def test_metrics_series_records_dynamics_columns():
    platform = _platform(
        dvfs_governor="hysteresis", watchdog_recovery=True,
        watchdog_timeout_us=20_000, model="ffw",
    )
    platform.inject_scenario({
        "name": "smoke",
        "events": [
            {"kind": "thermal_storm", "at_us": 50_000, "count": 4,
             "heat_c": 40.0},
            {"kind": "node", "at_us": 60_000, "count": 1,
             "duration_us": 100_000},
        ],
    })
    series = platform.run()
    data = series.as_dict()
    assert sum(data["throttle_events"]) == platform.dynamics.throttle_events
    assert sum(data["autonomous_recoveries"]) == 1


def test_dynamics_free_series_omits_dynamics_columns():
    platform = _platform(model="ffw")
    platform.inject_faults(2)
    data = platform.run().as_dict()
    assert "throttle_events" not in data
    assert "autonomous_recoveries" not in data
    assert "deadlock_drops" not in data
