"""Lightweight structured tracing.

Experiments need time-stamped records of what happened (task switches, fault
injections, packet sinks) to compute Figure 4's time series.  The
:class:`TraceRecorder` is an append-only log of small named records with a
category filter so that high-rate categories (per-hop routing events) can be
disabled when not needed — the 100-run sweeps only record task switches and
completions.
"""

from collections import namedtuple

TraceRecord = namedtuple("TraceRecord", ["time", "category", "payload"])


class TraceRecorder:
    """Append-only simulation trace with category filtering.

    Parameters
    ----------
    enabled_categories:
        Iterable of category names to record, or ``None`` to record all.
        An empty iterable records nothing.
    """

    def __init__(self, enabled_categories=None):
        self.records = []
        if enabled_categories is None:
            self._enabled = None
        else:
            self._enabled = frozenset(enabled_categories)

    def enabled(self, category):
        """True if records in ``category`` would be stored."""
        return self._enabled is None or category in self._enabled

    def record(self, time, category, **payload):
        """Store a record if its category is enabled."""
        if self.enabled(category):
            self.records.append(TraceRecord(time, category, payload))

    def by_category(self, category):
        """All records of one category, in time order."""
        return [r for r in self.records if r.category == category]

    def categories(self):
        """Distinct categories with at least one stored record.

        Scenario tests use this to assert which fault/recovery back
        edges (``link_degraded``, ``packet_corrupted``,
        ``controller_severed``, ...) a run actually exercised.
        """
        return {r.category for r in self.records}

    def count(self, category):
        """Number of records of one category."""
        return sum(1 for r in self.records if r.category == category)

    def clear(self):
        """Drop all stored records (filters are kept)."""
        del self.records[:]

    def __len__(self):
        return len(self.records)

    def __iter__(self):
        return iter(self.records)
