"""Node-level dynamic frequency scaling.

The Centurion AIM exposes "node-level frequency scaling (10 MHz – 300 MHz)"
as a knob and "the current node frequency" as a monitor.  Service times in
the processing element scale inversely with frequency relative to the
nominal operating point, so an intelligence model that throttles a hot node
directly slows its task throughput — closing the loop the paper describes.
"""

MIN_FREQUENCY_MHZ = 10
MAX_FREQUENCY_MHZ = 300
NOMINAL_FREQUENCY_MHZ = 100


class FrequencyScaler:
    """Clamped frequency knob with a change log.

    Parameters
    ----------
    nominal_mhz:
        Frequency at which task service times are quoted.
    """

    def __init__(self, nominal_mhz=NOMINAL_FREQUENCY_MHZ):
        if not MIN_FREQUENCY_MHZ <= nominal_mhz <= MAX_FREQUENCY_MHZ:
            raise ValueError(
                "nominal frequency {} MHz outside [{}, {}]".format(
                    nominal_mhz, MIN_FREQUENCY_MHZ, MAX_FREQUENCY_MHZ
                )
            )
        self.nominal_mhz = nominal_mhz
        self.current_mhz = nominal_mhz
        self.changes = 0

    def set_frequency(self, mhz):
        """Set the node frequency, clamped to the 10–300 MHz range.

        Returns the actually-applied frequency.
        """
        clamped = max(MIN_FREQUENCY_MHZ, min(MAX_FREQUENCY_MHZ, mhz))
        if clamped != self.current_mhz:
            self.current_mhz = clamped
            self.changes += 1
        return self.current_mhz

    def scale_duration(self, nominal_duration):
        """Scale a nominal-frequency duration to the current frequency.

        Halving the frequency doubles the duration.  Durations are kept as
        integers (µs) and never rounded below 1.
        """
        scaled = nominal_duration * self.nominal_mhz / self.current_mhz
        return max(1, int(round(scaled)))

    @property
    def slowdown(self):
        """Current slowdown factor relative to nominal (1.0 = nominal)."""
        return self.nominal_mhz / self.current_mhz

    def __repr__(self):
        return "FrequencyScaler({} MHz, nominal {} MHz)".format(
            self.current_mhz, self.nominal_mhz
        )
