"""Tests for the trace recorder."""

from repro.sim.trace import TraceRecorder


def test_records_all_categories_by_default():
    trace = TraceRecorder()
    trace.record(10, "a", x=1)
    trace.record(20, "b", y=2)
    assert len(trace) == 2


def test_category_filter_drops_unlisted():
    trace = TraceRecorder(enabled_categories=("keep",))
    trace.record(1, "keep", v=1)
    trace.record(2, "drop", v=2)
    assert len(trace) == 1
    assert trace.records[0].category == "keep"


def test_empty_filter_records_nothing():
    trace = TraceRecorder(enabled_categories=())
    trace.record(1, "anything")
    assert len(trace) == 0


def test_enabled_query():
    trace = TraceRecorder(enabled_categories=("a",))
    assert trace.enabled("a")
    assert not trace.enabled("b")


def test_by_category_returns_in_order():
    trace = TraceRecorder()
    trace.record(1, "a", n=1)
    trace.record(2, "b", n=2)
    trace.record(3, "a", n=3)
    assert [r.payload["n"] for r in trace.by_category("a")] == [1, 3]


def test_count():
    trace = TraceRecorder()
    for t in range(5):
        trace.record(t, "x")
    trace.record(9, "y")
    assert trace.count("x") == 5
    assert trace.count("y") == 1


def test_clear_keeps_filter():
    trace = TraceRecorder(enabled_categories=("a",))
    trace.record(1, "a")
    trace.clear()
    assert len(trace) == 0
    trace.record(2, "b")
    assert len(trace) == 0  # filter still active
    trace.record(3, "a")
    assert len(trace) == 1


def test_payload_kept_verbatim():
    trace = TraceRecorder()
    trace.record(5, "switch", node=3, old=1, new=2)
    record = trace.records[0]
    assert record.time == 5
    assert record.payload == {"node": 3, "old": 1, "new": 2}
