"""Tests for decision pathways."""

import pytest

from repro.core.pathways import DecisionPathway


def build_simple_pathway():
    pathway = DecisionPathway("test")
    pathway.add_comparator("t2", pattern=2)
    pathway.add_threshold("t2", threshold=2)
    pathway.wire("t2", "t2")
    return pathway


def test_present_demultiplexes_to_thresholds():
    pathway = build_simple_pathway()
    for value in (2, 2, 3, 2):
        pathway.present(value)
    assert pathway.thresholds["t2"].fires == 1


def test_knob_binding_fires_action():
    pathway = build_simple_pathway()
    actions = []
    pathway.bind_knob("t2", actions.append)
    for _ in range(3):
        pathway.present(2)
    assert len(actions) == 1


def test_inhibitory_wiring():
    pathway = DecisionPathway("test")
    pathway.add_comparator("go", pattern="go")
    pathway.add_comparator("stop", pattern="stop")
    pathway.add_threshold("decision", threshold=1)
    pathway.wire("go", "decision")
    pathway.wire("stop", "decision", inhibitory=True)
    pathway.present("go")
    pathway.present("stop")
    pathway.present("go")
    assert pathway.thresholds["decision"].fires == 0
    pathway.present("go")
    assert pathway.thresholds["decision"].fires == 1


def test_reset_all():
    pathway = build_simple_pathway()
    pathway.present(2)
    pathway.reset_all()
    assert pathway.thresholds["t2"].value == 0


def test_duplicate_keys_rejected():
    pathway = build_simple_pathway()
    with pytest.raises(KeyError):
        pathway.add_comparator("t2", pattern=9)
    with pytest.raises(KeyError):
        pathway.add_threshold("t2", threshold=1)


def test_describe_mentions_elements():
    pathway = build_simple_pathway()
    description = pathway.describe()
    assert "comparator" in description
    assert "threshold" in description


def test_multiple_comparators_independent():
    pathway = DecisionPathway("multi")
    for task in (1, 2, 3):
        key = "t{}".format(task)
        pathway.add_comparator(key, pattern=task)
        pathway.add_threshold(key, threshold=1)
        pathway.wire(key, key)
    pathway.present(2)
    pathway.present(2)
    assert pathway.thresholds["t2"].fires == 1
    assert pathway.thresholds["t1"].fires == 0
    assert pathway.thresholds["t3"].fires == 0
