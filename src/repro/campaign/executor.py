"""Sharded campaign executor with checkpoint/resume and dedup.

:func:`run_campaign` expands a :class:`~repro.campaign.spec.CampaignSpec`,
splits the grid into cells already present in the store and cells still
pending, resolves pending cells a *sibling* campaign already computed
through the store root's dedup index (``dedup_root`` — the reused record
is copied into this campaign's store byte-identically), optionally keeps
only this worker's deterministic shard of what remains
(``workers``/``worker_id``), streams the rest through
:func:`repro.experiments.runner.iter_runs` (chunked ``imap`` over a
multiprocessing pool, ordered collection, failures wrapped with their
``(model, seed, faults)`` context), and checkpoints each finished cell to
the store *as it completes* — killing a sweep and re-running it resumes
exactly where it stopped.
"""

import dataclasses
import time

from repro.campaign.index import StoreIndex
from repro.campaign.store import ResultStore, decode_result, record_satisfies
from repro.experiments.runner import iter_runs


def shard_of(key, workers):
    """Deterministic worker shard for a cell key.

    Pure function of the key's leading 64 bits, so every worker — on any
    machine — partitions one campaign's pending cells identically with
    no coordination.
    """
    return int(key[:16], 16) % workers


@dataclasses.dataclass
class CampaignReport:
    """A finished campaign: cells, results (same order), and counters.

    ``descriptors``/``results`` hold the *resolved* cells — the whole
    grid normally, only this worker's share (plus cache/dedup hits) on a
    sharded run, where ``pending_elsewhere`` counts the cells left to
    the other workers.
    """

    spec: object
    descriptors: list
    results: list
    executed: int
    cached: int
    elapsed_s: float
    store_dir: str = None
    #: Cells resolved from a sibling campaign via the dedup index.
    deduped: int = 0
    #: Pending cells belonging to other workers' shards (0 unsharded).
    pending_elsewhere: int = 0
    workers: int = None
    worker_id: int = None

    def pairs(self):
        """``(descriptor, result)`` tuples in grid order."""
        return list(zip(self.descriptors, self.results))

    def summary(self):
        """One-line human summary (what the CLI prints at the end)."""
        counters = "{} executed, {} cached".format(self.executed, self.cached)
        if self.deduped:
            counters += ", {} deduped".format(self.deduped)
        line = "campaign {}: {} cells ({}) in {:.2f}s".format(
            getattr(self.spec, "name", "?"),
            len(self.descriptors) + self.pending_elsewhere,
            counters,
            self.elapsed_s,
        )
        if self.workers:
            line += " [worker {}/{}: {} cells on other shards]".format(
                self.worker_id, self.workers, self.pending_elsewhere
            )
        return line


def run_campaign(spec, store=None, processes=None, progress=None,
                 use_cache=True, dedup_root=None, workers=None,
                 worker_id=None):
    """Run every cell of ``spec``; return a :class:`CampaignReport`.

    Parameters
    ----------
    store:
        ``None`` (in-memory, no persistence), a directory path, or an
        open :class:`~repro.campaign.store.ResultStore`.  With a store,
        cached cells are skipped and fresh cells are checkpointed as
        they finish.
    processes:
        ``None``/0/1 sequential; larger values shard pending cells
        across a pool.  (CLI callers default this to
        :func:`~repro.experiments.runner.default_processes`.)
    progress:
        Optional callable ``progress(done, total, cached)`` invoked
        after every cell (cached and deduped cells are reported up
        front).
    use_cache:
        ``False`` recomputes every cell even when the store already
        holds it (the fresh result overwrites the record); it also
        disables dedup lookups.
    dedup_root:
        Store root for cross-campaign dedup.  Pending cells whose key a
        sibling campaign under the root already holds are resolved from
        its :class:`~repro.campaign.index.StoreIndex` — zero simulations
        — and the reused record is copied into this campaign's store
        byte-identically.
    workers / worker_id:
        Distributed shard mode: with ``workers=N`` and ``worker_id=K``
        (0-based) only pending cells whose :func:`shard_of` equals ``K``
        execute here, and a path-opened store appends to this worker's
        private stream.  Independent processes or machines sharing the
        store directory drain one campaign concurrently; reconcile (or
        any later merged read) reassembles the full grid.
    """
    started = time.perf_counter()
    sharded = bool(workers) and workers > 1
    if sharded:
        if worker_id is None or not 0 <= worker_id < workers:
            raise ValueError(
                "worker_id must be in [0, {}) when workers={}".format(
                    workers, workers
                )
            )
    elif worker_id not in (None, 0):
        raise ValueError("worker_id needs workers > 1")
    descriptors = spec.expand()
    total = len(descriptors)
    owns_store = isinstance(store, str)
    if owns_store:
        store = ResultStore(store, worker=worker_id if sharded else None)
    try:
        if store is not None:
            store.write_spec(spec)
        # Hash each cell once: the key covers the full config dict, so
        # recomputing it per lookup would dominate the cached fast path.
        keys = [descriptor.key() for descriptor in descriptors]
        results_by_key = {}
        pending = []
        if store is not None and use_cache:
            # Membership checks hit the store's memoised key map — the
            # stream files were scanned once, at open, never per key.
            for descriptor, key in zip(descriptors, keys):
                if store.has_result(descriptor, key=key):
                    results_by_key[key] = store.load_result(
                        descriptor, key=key
                    )
                else:
                    pending.append((descriptor, key))
        else:
            pending = list(zip(descriptors, keys))
        cached = total - len(pending)
        pending_elsewhere = 0
        if sharded:
            mine = [
                (descriptor, key) for descriptor, key in pending
                if shard_of(key, workers) == worker_id
            ]
            pending_elsewhere = len(pending) - len(mine)
            pending = mine
        deduped = 0
        if pending and dedup_root is not None and use_cache:
            index = StoreIndex(dedup_root)
            # In a fleet, only worker 0 persists the refreshed entries —
            # N workers appending the same backlog would bloat the index.
            index.refresh(persist=not sharded or worker_id == 0)
            still_pending = []
            for descriptor, key in pending:
                record = index.lookup(key)
                if record_satisfies(record, descriptor):
                    if store is not None:
                        store.save_record(record)
                    results_by_key[key] = decode_result(record)
                    deduped += 1
                else:
                    still_pending.append((descriptor, key))
            pending = still_pending
        done = cached + deduped
        if progress is not None and done:
            progress(done, total, cached)
        for (descriptor, key), result in zip(
            pending,
            iter_runs([d.job() for d, _k in pending], processes=processes),
        ):
            if store is not None:
                store.save_result(descriptor, result, key=key)
            results_by_key[key] = result
            done += 1
            if progress is not None:
                progress(done, total, cached)
        resolved = [
            (descriptor, results_by_key[key])
            for descriptor, key in zip(descriptors, keys)
            if key in results_by_key
        ]
    finally:
        if owns_store:
            store.close()
    return CampaignReport(
        spec=spec,
        descriptors=[descriptor for descriptor, _result in resolved],
        results=[result for _descriptor, result in resolved],
        executed=len(pending),
        cached=cached,
        elapsed_s=time.perf_counter() - started,
        store_dir=store.directory if store is not None else None,
        deduped=deduped,
        pending_elsewhere=pending_elsewhere,
        workers=workers if sharded else None,
        worker_id=worker_id if sharded else None,
    )
