"""Cross-campaign dedup index over a campaign store root (store v2).

A *store root* is a directory whose subdirectories are campaign stores
(each holding a ``results.jsonl``).  The root-level ``index.jsonl`` maps
every cell content key to the campaign file holding its record::

    {"campaign": "table1", "key": "<sha256>", "offset": 12345}
    {"campaign": "table1", "scanned": 67890}

Lines are appended incrementally: an entry line locates one record by
byte offset; a ``scanned`` progress line records how far into that
campaign's ``results.jsonl`` the index has read, so a refresh scans only
the tail appended since.  A campaign file that *shrank* (gc compaction)
is rescanned from the start.

The index is **derivable, never required**: a pre-v2 campaign directory
joins the dedup pool on the next :meth:`StoreIndex.refresh`, and a stale
or corrupt index is always repairable — ``campaign gc --apply`` rebuilds
it from the row files (pinned by the store torture tests).  Lookups
verify the record they seek to: an entry whose offset no longer holds
its key reads as a miss, never as wrong data.

Dedup scope: the lookup key is the full simulation content hash
(:meth:`~repro.campaign.spec.RunDescriptor.key` — schema, model, seed,
fault axis, metric, config), so dedup never crosses differing spec
payloads: two campaigns share a key exactly when the cell is the same
simulation.  Worker shard streams are deliberately not indexed — they
are transient; :meth:`~repro.campaign.store.ResultStore.reconcile`
(or gc) folds them into ``results.jsonl``, where the next refresh
picks them up.
"""

import json
import os

from repro.campaign.store import RESULTS_FILE, worker_files

INDEX_FILE = "index.jsonl"


def campaign_dirs(root):
    """Sorted names of the campaign directories under ``root``.

    A campaign directory is any subdirectory holding a ``results.jsonl``
    (v1 directories qualify unchanged) or — for a campaign only worker
    shards have written to so far — any ``results.worker-*.jsonl``.
    """
    try:
        names = sorted(os.listdir(root))
    except OSError:
        return []
    return [
        name for name in names
        if os.path.isfile(os.path.join(root, name, RESULTS_FILE))
        or worker_files(os.path.join(root, name))
    ]


def iter_jsonl(path, start=0):
    """Yield ``(line_start, line_end, record)`` per *complete* line.

    Byte-offset based (binary read).  A final line without a newline — a
    torn append still in flight — is never yielded, so its bytes stay
    below the scan watermark and are revisited once the line completes.
    Complete but unparsable lines yield ``record=None``: they advance
    the watermark (gc counts and drops them).
    """
    with open(path, "rb") as handle:
        if start:
            handle.seek(start)
        offset = start
        for line in handle:
            end = offset + len(line)
            if not line.endswith(b"\n"):
                return  # torn tail
            begin, offset = offset, end
            try:
                record = json.loads(line.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                record = None
            if not isinstance(record, dict):
                record = None
            yield begin, end, record


class StoreIndex:
    """Incremental content-key → ``(campaign, offset)`` index of a root."""

    def __init__(self, root):
        self.root = root
        self.path = os.path.join(root, INDEX_FILE)
        self._entries = {}   # key -> (campaign, offset)
        self._scanned = {}   # campaign -> bytes covered by the index
        self._load()

    def __len__(self):
        return len(self._entries)

    def __contains__(self, key):
        return key in self._entries

    def keys(self):
        """The indexed cell keys."""
        return self._entries.keys()

    def entries(self):
        """``(key, campaign, offset)`` triples of every index entry."""
        return [
            (key, campaign, offset)
            for key, (campaign, offset) in self._entries.items()
        ]

    def _load(self):
        if not os.path.exists(self.path):
            return
        for _begin, _end, record in iter_jsonl(self.path):
            if record is None:
                continue  # torn/garbage index lines cost only themselves
            campaign = record.get("campaign")
            if campaign is None:
                continue
            if "key" in record:
                self._entries[record["key"]] = (
                    campaign, record.get("offset", -1)
                )
            elif "scanned" in record:
                self._scanned[campaign] = record["scanned"]

    def refresh(self, persist=True):
        """Index every row appended under the root since the last pass.

        Returns the number of new entries.  Appends to ``index.jsonl``
        only when something new was scanned, so a refresh over an
        unchanged root writes nothing.  ``persist=False`` keeps the new
        entries in memory only — what a sharded worker fleet uses so N
        concurrent refreshes don't append the same backlog N times (one
        designated writer persists; everyone else just reads).
        """
        added = []
        for name in campaign_dirs(self.root):
            path = os.path.join(self.root, name, RESULTS_FILE)
            try:
                size = os.path.getsize(path)
            except OSError:
                continue
            start = self._scanned.get(name, 0)
            if size < start:
                start = 0  # file shrank: compacted/rewritten — rescan
            if size == start:
                continue
            watermark = start
            for begin, end, record in iter_jsonl(path, start=start):
                watermark = end
                if record is None or not record.get("key"):
                    continue
                key = record["key"]
                self._entries[key] = (name, begin)
                added.append(
                    {"campaign": name, "key": key, "offset": begin}
                )
            if watermark != self._scanned.get(name):
                self._scanned[name] = watermark
                added.append({"campaign": name, "scanned": watermark})
        if added and persist:
            with open(self.path, "a") as handle:
                for entry in added:
                    handle.write(
                        json.dumps(entry, sort_keys=True,
                                   separators=(",", ":"))
                    )
                    handle.write("\n")
        return sum(1 for entry in added if "key" in entry)

    def lookup(self, key):
        """The stored record for ``key``, or None.

        Seeks straight to the indexed offset (no file scan) and verifies
        the record found there actually carries ``key`` — a compacted or
        diverged file reads as a miss, never as another cell's data.
        """
        entry = self._entries.get(key)
        if entry is None:
            return None
        campaign, offset = entry
        path = os.path.join(self.root, campaign, RESULTS_FILE)
        try:
            with open(path, "rb") as handle:
                handle.seek(offset)
                line = handle.readline()
        except (OSError, ValueError):
            return None
        if not line.endswith(b"\n"):
            return None
        try:
            record = json.loads(line.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return None
        if not isinstance(record, dict) or record.get("key") != key:
            return None  # stale entry (row file changed underneath)
        return record

    def stale_keys(self):
        """Keys whose entries no longer verify (diverged index)."""
        return [key for key in self._entries if self.lookup(key) is None]

    def rebuild(self):
        """Drop the index file and re-derive it from the row files."""
        self._entries.clear()
        self._scanned.clear()
        if os.path.exists(self.path):
            os.remove(self.path)
        return self.refresh()
