"""Tests for the command-line interface."""

import json

import pytest

from repro.experiments.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_run_small(capsys, tmp_path):
    out_file = tmp_path / "run.json"
    code = main([
        "run", "--model", "none", "--seed", "3", "--small",
        "--json", str(out_file),
    ])
    assert code == 0
    captured = capsys.readouterr().out
    assert "settled_performance" in captured
    payload = json.loads(out_file.read_text())
    assert payload["row"]["model"] == "none"
    assert "active_nodes" in payload["series"]


def test_run_with_faults_small(capsys):
    code = main(["run", "--model", "ffw", "--seed", "3", "--small",
                 "--faults", "2"])
    assert code == 0
    assert "recovery_time_ms" in capsys.readouterr().out


def test_parser_table2_fault_list():
    args = build_parser().parse_args(["table2", "--faults", "0,8"])
    assert args.faults == "0,8"


def test_parser_defaults():
    args = build_parser().parse_args(["table1"])
    assert args.runs == 15
    assert args.processes is None
    assert args.resume is None
    args = build_parser().parse_args(["figure4"])
    assert args.seed == 42


def test_parser_resume_default_directory():
    args = build_parser().parse_args(["table2", "--resume"])
    assert args.resume == "campaigns/table2"
    args = build_parser().parse_args(["table2", "--resume", "elsewhere"])
    assert args.resume == "elsewhere"


def test_parser_campaign_requires_source():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["campaign"])
    args = build_parser().parse_args(["campaign", "--paper", "table2"])
    assert args.paper == "table2"


def _mini_spec_file(tmp_path):
    spec = {
        "name": "mini",
        "models": ["none", "ffw"],
        "seeds": [1, 2],
        "fault_counts": [0, 2],
        "base": "small",
        "kind": "table2",
    }
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(spec))
    return str(path)


def test_campaign_subcommand_cold_then_resumed(capsys, tmp_path):
    spec_file = _mini_spec_file(tmp_path)
    store = str(tmp_path / "store")
    argv = ["campaign", "--spec", spec_file, "--dir", store,
            "--processes", "1"]
    assert main(argv) == 0
    cold = capsys.readouterr()
    assert "8 executed, 0 cached" in cold.err
    assert "Foraging For Work" in cold.out
    assert main(argv) == 0
    warm = capsys.readouterr()
    assert "0 executed, 8 cached" in warm.err
    assert warm.out == cold.out  # bit-identical artefact off the store


def test_campaign_fresh_recomputes(capsys, tmp_path):
    spec_file = _mini_spec_file(tmp_path)
    store = str(tmp_path / "store")
    base = ["campaign", "--spec", spec_file, "--dir", store,
            "--processes", "1"]
    assert main(base) == 0
    capsys.readouterr()
    assert main(base + ["--fresh"]) == 0
    assert "8 executed, 0 cached" in capsys.readouterr().err
