"""ASCII spatial maps of the Centurion grid.

The emergent behaviours of the paper are *spatial* — providers migrate onto
traffic corridors, recovery re-forms the topology around a dead region —
and a per-node map at a chosen instant shows them directly.  Values are
rendered row by row in grid orientation (row 0 at the top, matching
Figure 2's layout with the Experiment Controller attached to the top row).
"""


def render_grid(topology, values, formatter=None, legend=None, title=None):
    """Render a mapping ``node id -> value`` as an ASCII grid.

    Parameters
    ----------
    topology:
        A :class:`repro.noc.topology.MeshTopology`.
    values:
        Mapping from node id to any value; missing nodes render as ``.``.
    formatter:
        Callable value -> short string (default ``str``, truncated to the
        widest cell).
    legend / title:
        Optional footer/header lines.
    """
    fmt = formatter if formatter is not None else str
    cells = {}
    width = 1
    for node in topology.node_ids():
        if node in values:
            text = fmt(values[node])
        else:
            text = "."
        cells[node] = text
        width = max(width, len(text))
    lines = []
    if title:
        lines.append(title)
    for y in range(topology.height):
        row = " ".join(
            cells[topology.node_id(x, y)].rjust(width)
            for x in range(topology.width)
        )
        lines.append(row)
    if legend:
        lines.append(legend)
    return "\n".join(lines)


def task_map(platform):
    """Current task topology: one symbol per node, ``X`` for dead nodes.

    This is the map whose before/after difference is the paper's
    "reorganising the task topology to reflect the task graph".
    """
    values = {}
    for node_id, pe in platform.pes.items():
        if pe.halted:
            values[node_id] = "X"
        elif pe.task_id is None:
            values[node_id] = "."
        else:
            values[node_id] = str(pe.task_id)
    return render_grid(
        platform.network.topology,
        values,
        title="task topology (X = failed node)",
        legend="tasks: " + ", ".join(
            "{}={}".format(t.task_id, t.name)
            for t in platform.graph.tasks.values()
        ),
    )


def activity_map(platform, scale=None):
    """Per-node completed executions, bucketed 0-9 (``*`` = above scale)."""
    completions = {
        node_id: pe.completions for node_id, pe in platform.pes.items()
    }
    top = max(completions.values(), default=0)
    bucket = scale if scale is not None else max(1, top // 9 or 1)

    def fmt(count):
        level = count // bucket
        return "*" if level > 9 else str(level)

    return render_grid(
        platform.network.topology,
        completions,
        formatter=fmt,
        title="execution activity (0-9, * above scale; bucket={})".format(
            bucket),
    )


def temperature_map(platform):
    """Per-node temperature in whole °C at the current instant."""
    now = platform.sim.now
    values = {
        node_id: int(round(pe.thermal.temperature(now)))
        for node_id, pe in platform.pes.items()
    }
    return render_grid(
        platform.network.topology,
        values,
        title="temperature map (degC) at t={} us".format(now),
    )


def switch_map(platform):
    """Per-node intelligence-driven task switches (saturates at 9)."""
    values = {
        node_id: min(9, pe.task_switches)
        for node_id, pe in platform.pes.items()
    }
    return render_grid(
        platform.network.topology,
        values,
        title="task switches per node (capped at 9)",
    )


def queue_map(platform):
    """Instantaneous internal-port queue depth per node."""
    values = {
        node_id: len(pe.queue) for node_id, pe in platform.pes.items()
    }
    return render_grid(
        platform.network.topology,
        values,
        title="queue depth at t={} us".format(platform.sim.now),
    )
