"""Processing-element substrate.

Each Centurion node pairs a router with a Xilinx MicroBlaze MCS processor.
This package models that processor at the task level: a node runs exactly
one application task at a time, consumes packets addressed to that task from
an input queue, takes a task-dependent service time per packet (scaled by
the node's DVFS frequency) and emits the task's downstream packets.

Also here are the node-local monitors and knobs of Figure 2a that are not
part of the router: the watchdog, the 10–300 MHz frequency scaling knob and
the (synthetic ring-oscillator) temperature sensor.
"""

from repro.node.dvfs import FrequencyScaler
from repro.node.processor import ProcessingElement
from repro.node.thermal import ThermalModel
from repro.node.watchdog import Watchdog

__all__ = [
    "FrequencyScaler",
    "ProcessingElement",
    "ThermalModel",
    "Watchdog",
]
