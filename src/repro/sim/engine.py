"""Event queue and simulation loop.

The :class:`Simulator` is a classic calendar-queue discrete-event kernel:

* events are kept in a binary heap whose entries are plain
  ``(time, priority, seq, handle, callback)`` tuples, so ties at the same
  timestamp break first by priority and then by insertion order — this
  makes runs reproducible;
* ``run_until(horizon)`` pops and dispatches events until the queue is empty
  or the horizon is passed;
* cancelling is done by tombstoning (the heap entry stays, the handle is
  marked dead), which is O(1) and the standard trick from the heapq docs.

The kernel knows nothing about routers or ants; everything above it talks to
it through :meth:`Simulator.schedule` / :meth:`Simulator.schedule_at`.

Hot-path notes
--------------
The kernel is the inner loop of every table sweep, so its design choices
are performance-motivated:

* heap entries are tuples of ints (plus trailing non-compared payload), so
  every sift comparison runs in C without calling back into Python —
  ``Event.__lt__`` exists only for compatibility and is never used by the
  queue itself;
* ``run_until`` is a single fused pop-until-horizon loop: one ``heap[0]``
  peek plus one ``heappop`` per event, with no per-event method calls into
  the queue object;
* :meth:`Simulator.post` / :meth:`Simulator.post_at` schedule fire-and-
  forget callbacks without allocating an :class:`Event` handle — used by
  the NoC hop engine and the PE service loop, the two hottest schedulers;
* :meth:`Simulator.schedule_many` bulk-inserts a batch of callbacks,
  switching from repeated pushes to an O(n) heapify when the batch is
  large relative to the queue;
* cancellations are counted, and the queue compacts itself (filters dead
  entries and re-heapifies) once tombstones dominate, so cancel-heavy
  users of the public ``Event.cancel`` API cannot bloat the heap (the
  in-tree hot paths avoid cancellation entirely — PeriodicProcess and the
  event-mode AIM timer wakeups strand stale work behind an epoch / a
  demand re-check instead — so this is a robustness bound for extension
  code, not a steady-state cost); the handle's queue link is severed when
  its entry leaves the heap, so cancelling an already-dispatched event is
  a no-op and the tombstone counter stays exact (it counts dead entries
  actually present in the heap, never phantoms);
* :meth:`Simulator.try_advance` is the express-path gate used by
  :mod:`repro.noc.network`: it advances the clock inline when — and only
  when — doing so is indistinguishable from dispatching a scheduled event.
"""

import heapq
from heapq import heappop, heappush

#: Allocation shortcut for the inlined handle construction in
#: :meth:`Simulator.schedule` (skips the ``Event.__init__`` call).
_new_event = object.__new__


class SimulationError(RuntimeError):
    """Raised for kernel misuse (scheduling in the past, re-running, ...)."""


class Event:
    """Handle for a scheduled callback.

    Instances are returned by :meth:`Simulator.schedule`; user code keeps
    them only if it may need to :meth:`cancel` the event later (e.g. the
    Foraging-for-Work timeout that is reset whenever a packet is sunk
    locally).

    The handle is *not* the heap entry: the queue orders plain tuples and
    only carries the handle as payload, so comparisons never enter Python.
    """

    __slots__ = ("time", "priority", "seq", "callback", "cancelled", "_queue")

    def __init__(self, time, priority, seq, callback, queue=None):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self._queue = queue

    def cancel(self):
        """Mark the event dead; the kernel will skip it when popped.

        Cancellation is the cold path, so it also carries the compaction
        trigger: once tombstones accumulate past the threshold the queue
        rebuilds itself, keeping cancel-heavy callers from bloating the
        heap without taxing every push.
        """
        if not self.cancelled:
            self.cancelled = True
            queue = self._queue
            if queue is not None:
                tombstones = queue._tombstones + 1
                queue._tombstones = tombstones
                if tombstones >= queue.COMPACT_MIN_TOMBSTONES:
                    queue._compact()

    def __lt__(self, other):
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self):
        state = "cancelled" if self.cancelled else "pending"
        return "Event(t={}, prio={}, seq={}, {})".format(
            self.time, self.priority, self.seq, state
        )


class EventQueue:
    """Binary-heap event queue with deterministic tie-breaking.

    Entries are ``(time, priority, seq, handle, callback)`` tuples; the
    ``handle`` slot is ``None`` for fire-and-forget callbacks scheduled
    through the no-allocation fast path.
    """

    #: Compact only once at least this many tombstones have accumulated.
    COMPACT_MIN_TOMBSTONES = 64

    def __init__(self):
        self._heap = []
        self._seq = 0
        self._tombstones = 0

    def __len__(self):
        return len(self._heap)

    def push(self, time, priority, callback):
        """Insert a callback and return its :class:`Event` handle."""
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, priority, seq, callback, self)
        heapq.heappush(self._heap, (time, priority, seq, event, callback))
        return event

    def push_fast(self, time, priority, callback):
        """Insert a non-cancellable callback without creating a handle."""
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._heap, (time, priority, seq, None, callback))

    def push_many(self, entries, priority):
        """Bulk-insert ``(time, callback)`` pairs; returns their handles.

        Handles are created in iteration order, so same-time entries keep
        their list order (FIFO), exactly as repeated :meth:`push` calls
        would.  Large batches are appended and re-heapified in O(n)
        instead of paying O(log n) per push.
        """
        heap = self._heap
        handles = []
        seq = self._seq
        batch = []
        for time, callback in entries:
            event = Event(time, priority, seq, callback, self)
            handles.append(event)
            batch.append((time, priority, seq, event, callback))
            seq += 1
        self._seq = seq
        if len(batch) * 8 >= len(heap):
            heap.extend(batch)
            heapq.heapify(heap)
        else:
            for entry in batch:
                heapq.heappush(heap, entry)
        return handles

    def pop(self):
        """Remove and return the earliest live event, or ``None`` if empty.

        Tombstoned (cancelled) events are discarded silently.  For entries
        scheduled through the handle-less fast path an equivalent
        :class:`Event` is synthesised so callers see a uniform interface.
        """
        heap = self._heap
        while heap:
            time, priority, seq, handle, callback = heapq.heappop(heap)
            if handle is None:
                return Event(time, priority, seq, callback)
            # The entry has left the heap: sever the handle's queue link so
            # a later cancel() cannot count a tombstone that is not there.
            handle._queue = None
            if not handle.cancelled:
                return handle
            self._tombstones -= 1
        return None

    def peek_time(self):
        """Timestamp of the earliest live event, or ``None`` if empty."""
        heap = self._heap
        while heap:
            entry = heap[0]
            handle = entry[3]
            if handle is not None and handle.cancelled:
                heapq.heappop(heap)
                handle._queue = None
                self._tombstones -= 1
                continue
            return entry[0]
        return None

    def _compact(self):
        """Drop tombstoned entries and restore the heap invariant.

        The cancellation counter is exact — every pop site severs the
        handle's queue link, so cancelling an already-dispatched event is
        a no-op and the counter only ever counts dead entries actually
        present in the heap.  After compaction the heap holds live entries
        only and the counter is zero.
        """
        heap = self._heap
        if len(heap) >= 2 * self._tombstones:
            # Mostly-live heap: a rebuild would not reclaim much yet.
            return
        heap[:] = [
            entry
            for entry in heap
            if entry[3] is None or not entry[3].cancelled
        ]
        heapq.heapify(heap)
        self._tombstones = 0


class Simulator:
    """Discrete-event simulator with an integer-microsecond clock.

    Parameters
    ----------
    seed:
        Master seed for the simulation's random streams (see
        :class:`repro.sim.rng.RngStreams`).  Two simulators with equal seeds
        and equal scheduling sequences are bit-identical.
    """

    #: Default priority for ordinary events.
    PRIORITY_NORMAL = 10
    #: Priority for monitor sampling — runs after normal events at a tick.
    PRIORITY_SAMPLE = 20
    #: Priority for event-mode AIM timer wakeups — strictly after SAMPLE.
    #: In ticked mode the AIM bank's tick for time T is always re-posted
    #: later (larger seq) than the metrics sampler's event for T, so the
    #: sampler dispatches first at coincident timestamps.  Event-mode
    #: wakeups are posted at arbitrary arm times and would win that seq
    #: race; a dedicated lower-urgency priority preserves the
    #: sampler-before-tick ordering and hence bit-identity.
    PRIORITY_WAKEUP = 21
    #: Priority for control-plane actions (fault injection) — runs first.
    PRIORITY_CONTROL = 0

    def __init__(self, seed=0):
        from repro.sim.rng import RngStreams

        self.now = 0
        self.seed = seed
        self.rng = RngStreams(seed)
        self._queue = EventQueue()
        self._running = False
        self._horizon = -1
        self._dispatched = 0

    # -- scheduling -------------------------------------------------------

    def schedule(self, delay, callback, priority=PRIORITY_NORMAL):
        """Schedule ``callback()`` to run ``delay`` µs from now.

        ``delay`` must be a non-negative integer.  Returns the event handle.
        """
        if delay < 0:
            raise SimulationError(
                "cannot schedule {} us in the past".format(delay)
            )
        # Inlined EventQueue.push — this is the hottest kernel entry
        # point, so the handle is built without the __init__ call.
        queue = self._queue
        time = self.now + (delay if type(delay) is int else int(delay))
        seq = queue._seq
        queue._seq = seq + 1
        event = _new_event(Event)
        event.time = time
        event.priority = priority
        event.seq = seq
        event.callback = callback
        event.cancelled = False
        event._queue = queue
        heappush(queue._heap, (time, priority, seq, event, callback))
        return event

    def schedule_at(self, time, callback, priority=PRIORITY_NORMAL):
        """Schedule ``callback()`` at absolute time ``time`` µs."""
        if time < self.now:
            raise SimulationError(
                "cannot schedule at t={} before now={}".format(time, self.now)
            )
        return self._queue.push(int(time), priority, callback)

    def post(self, delay, callback, priority=PRIORITY_NORMAL):
        """Fire-and-forget :meth:`schedule`: no handle, no cancellation.

        Skips the :class:`Event` allocation, which measurably matters on
        the per-hop and per-service hot paths.  Returns ``None``.
        """
        if delay < 0:
            raise SimulationError(
                "cannot schedule {} us in the past".format(delay)
            )
        queue = self._queue
        time = self.now + (delay if type(delay) is int else int(delay))
        seq = queue._seq
        queue._seq = seq + 1
        heappush(queue._heap, (time, priority, seq, None, callback))

    def post_at(self, time, callback, priority=PRIORITY_NORMAL):
        """Fire-and-forget :meth:`schedule_at`; returns ``None``."""
        if time < self.now:
            raise SimulationError(
                "cannot schedule at t={} before now={}".format(time, self.now)
            )
        queue = self._queue
        time = time if type(time) is int else int(time)
        seq = queue._seq
        queue._seq = seq + 1
        heappush(queue._heap, (time, priority, seq, None, callback))

    def schedule_many(self, pairs, priority=PRIORITY_NORMAL):
        """Bulk-schedule ``(delay, callback)`` pairs; returns handles.

        Equivalent to ``[schedule(d, cb) for d, cb in pairs]`` — same-time
        entries dispatch in list order — but inserts the whole batch at
        once (heapify for large batches).  The relative-delay twin of
        :meth:`schedule_many_at`, which multicast workload generation
        uses to inject the sibling first hops of one fork instance.
        """
        now = self.now
        entries = []
        for delay, callback in pairs:
            if delay < 0:
                raise SimulationError(
                    "cannot schedule {} us in the past".format(delay)
                )
            entries.append((now + int(delay), callback))
        return self._queue.push_many(entries, priority)

    def schedule_many_at(self, pairs, priority=PRIORITY_NORMAL):
        """Bulk-schedule ``(time, callback)`` pairs at absolute times."""
        now = self.now
        entries = []
        for time, callback in pairs:
            if time < now:
                raise SimulationError(
                    "cannot schedule at t={} before now={}".format(time, now)
                )
            entries.append((int(time), callback))
        return self._queue.push_many(entries, priority)

    # -- execution --------------------------------------------------------

    def run_until(self, horizon):
        """Dispatch events in order until ``horizon`` µs (inclusive).

        The clock is left at ``horizon`` even if the queue drains early, so
        sampling code can rely on ``sim.now`` after the call.  Events
        scheduled exactly at the horizon are executed.
        """
        if self._running:
            raise SimulationError("run_until re-entered")
        self._running = True
        self._horizon = horizon
        queue = self._queue
        heap = queue._heap
        pop = heappop
        dispatched = 0
        try:
            while heap:
                entry = heap[0]
                time = entry[0]
                if time > horizon:
                    break
                pop(heap)
                handle = entry[3]
                if handle is not None:
                    handle._queue = None
                    if handle.cancelled:
                        queue._tombstones -= 1
                        continue
                self.now = time
                entry[4]()
                dispatched += 1
        finally:
            self._running = False
            self._dispatched += dispatched
        if self.now < horizon:
            self.now = horizon
        return self._dispatched

    def step(self):
        """Dispatch exactly one event; return it or ``None`` if drained."""
        event = self._queue.pop()
        if event is None:
            return None
        self.now = event.time
        event.callback()
        self._dispatched += 1
        return event

    def try_advance(self, time):
        """Express-path gate: advance the clock to ``time`` if that is
        indistinguishable from dispatching an event scheduled there.

        Returns True — with ``now`` advanced — only when a ``run_until``
        loop is active, ``time`` is within its horizon, and no pending
        event would dispatch at or before ``time``.  Under those conditions
        executing work inline is bit-identical to scheduling it: the next
        heap pop cannot observe an intermediate clock.  Callers must
        re-invoke the gate after any side effects that may have scheduled
        new events (see the hop walker in :mod:`repro.noc.network`).
        """
        if not self._running or time > self._horizon:
            return False
        queue = self._queue
        heap = queue._heap
        while heap:
            entry = heap[0]
            handle = entry[3]
            if handle is not None and handle.cancelled:
                heapq.heappop(heap)
                handle._queue = None
                queue._tombstones -= 1
                continue
            if entry[0] <= time:
                return False
            break
        self.now = time
        return True

    # -- introspection ----------------------------------------------------

    @property
    def pending_events(self):
        """Number of events currently in the queue (including tombstones)."""
        return len(self._queue)

    @property
    def dispatched_events(self):
        """Total number of events executed so far."""
        return self._dispatched

    def __repr__(self):
        return "Simulator(now={}us, pending={}, dispatched={})".format(
            self.now, self.pending_events, self._dispatched
        )
