"""Determinism and hash-conservation gates for the workload subsystem.

Four angles, mirroring the other determinism layers:

* key conservation — a workload-free cell content-hashes to the exact
  pre-workload payload (hand-rolled replica recipe), while attaching a
  declarative workload joins exactly its canonical form;
* legacy equivalence — the built-in ``fork_join`` spec, run through the
  generalised interpreter, reproduces the legacy
  :class:`~repro.app.workload.ForkJoinWorkload` rows, stats and series
  bit-identically, across repeats and across ``fast_path`` on/off;
* time-varying arrivals — burst-driven runs repeat byte-identically;
* the workloads campaign axis — expansion order, size, key
  distinctness, byte-identical empty-axis expansion, and spec
  round-trips.
"""

import hashlib
import json

import pytest

from repro.app.workloads import fork_join_spec, load_workload
from repro.campaign.spec import (
    CampaignSpec,
    HASH_SCHEMA_VERSION,
    RunDescriptor,
)
from repro.experiments.runner import run_single
from repro.platform.config import PlatformConfig

from tests.integration.test_fault_v2_determinism import _v1_config_dict

_CONFIG = PlatformConfig.small(horizon_us=120_000, fault_time_us=60_000)

_BURST = {
    "name": "burst-fan",
    "tasks": [
        {"id": 1, "service_us": 500,
         "arrival": {"period_us": 4_000, "shape": "burst",
                     "burst_ticks": 4, "idle_ticks": 4},
         "downstream": [{"task": 2, "fanout": 3}]},
        {"id": 2, "service_us": 9_000, "weight": 3, "downstream": [3]},
        {"id": 3, "service_us": 2_000, "join": True},
    ],
}


# -- key conservation --------------------------------------------------------


def test_workload_free_key_replicates_v1_recipe():
    """A cell without a workload hashes to the exact pre-workload
    payload — no ``workload`` entry, present-at-default or otherwise."""
    descriptor = RunDescriptor("ffw", 7, 3, _CONFIG)
    payload = {
        "schema": HASH_SCHEMA_VERSION,
        "model": "foraging_for_work",
        "seed": 7,
        "faults": 3,
        "metric": "joins",
        "config": _v1_config_dict(_CONFIG),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    assert descriptor.key() == hashlib.sha256(
        blob.encode("utf-8")
    ).hexdigest()


def test_workload_cell_key_replicates_canonical_recipe():
    """A workload cell joins exactly the spec's canonical form."""
    spec = fork_join_spec()
    descriptor = RunDescriptor("ffw", 7, 3, _CONFIG, workload=spec)
    payload = {
        "schema": HASH_SCHEMA_VERSION,
        "model": "foraging_for_work",
        "seed": 7,
        "faults": 3,
        "metric": "joins",
        "config": _v1_config_dict(_CONFIG),
        "workload": spec.canonical(),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    assert descriptor.key() == hashlib.sha256(
        blob.encode("utf-8")
    ).hexdigest()


@pytest.mark.parametrize("changes", [
    {"packet_flits": 8},
    {"multicast": True},
    {"per_task_series": True},
])
def test_spec_fields_mint_fresh_cell_keys(changes):
    base = RunDescriptor(
        "none", 7, 0, _CONFIG, workload=fork_join_spec()
    ).key()
    spec = load_workload(
        dict(fork_join_spec().to_dict(), **changes)
    )
    changed = RunDescriptor("none", 7, 0, _CONFIG, workload=spec).key()
    assert changed != base
    assert base != RunDescriptor("none", 7, 0, _CONFIG).key()


# -- legacy equivalence ------------------------------------------------------


def _strip_workload(result):
    row = result.as_row()
    row.pop("workload", None)
    return row


def test_fork_join_spec_reproduces_legacy_run_bit_identically():
    legacy = run_single("ffw", seed=7, faults=3, config=_CONFIG,
                        keep_series=True)
    spec = run_single("ffw", seed=7, faults=3, config=_CONFIG,
                      keep_series=True, workload=fork_join_spec())
    assert spec.workload == "fork_join"
    assert _strip_workload(spec) == _strip_workload(legacy)
    assert spec.noc_stats == legacy.noc_stats
    assert spec.app_stats == legacy.app_stats
    assert spec.series.as_dict() == legacy.series.as_dict()


def test_fork_join_spec_matches_legacy_across_fast_path():
    spec = fork_join_spec()
    fast = run_single("ffw", seed=7, faults=3, config=_CONFIG,
                      workload=spec)
    slow = run_single("ffw", seed=7, faults=3,
                      config=_CONFIG.replace(fast_path=False),
                      workload=spec)
    assert fast.as_row() == slow.as_row()


def test_multicast_spec_matches_legacy_multicast():
    legacy = run_single(
        "ffw", seed=7, faults=2,
        config=_CONFIG.replace(multicast_fork=True), keep_series=True,
    )
    spec = run_single(
        "ffw", seed=7, faults=2,
        config=_CONFIG.replace(multicast_fork=True), keep_series=True,
        workload=fork_join_spec(multicast=True),
    )
    assert _strip_workload(spec) == _strip_workload(legacy)
    assert spec.series.as_dict() == legacy.series.as_dict()


# -- time-varying arrivals ---------------------------------------------------


def test_burst_workload_repeats_bit_identically():
    first = run_single("ffw", seed=7, faults=2, config=_CONFIG,
                       keep_series=True, workload=_BURST)
    second = run_single("ffw", seed=7, faults=2, config=_CONFIG,
                        keep_series=True, workload=_BURST)
    assert first.as_row() == second.as_row()
    assert first.noc_stats == second.noc_stats
    assert first.app_stats == second.app_stats
    assert first.series.as_dict() == second.series.as_dict()


def test_per_task_series_exports_only_when_opted_in():
    plain = run_single("ffw", seed=7, config=_CONFIG, keep_series=True,
                       workload=_BURST)
    assert "task_executions" not in plain.series.as_dict()
    opted = run_single(
        "ffw", seed=7, config=_CONFIG, keep_series=True,
        workload=dict(_BURST, per_task_series=True),
    )
    tracked = opted.series.as_dict()["task_executions"]
    assert tracked
    assert all(any(column) for column in tracked.values())


# -- the workloads campaign axis ---------------------------------------------


def _axis_spec(**changes):
    base = dict(
        name="workload-axis",
        models=("none", "ffw"),
        seeds=(7, 8),
        fault_counts=(0, 2),
        config=_CONFIG,
        workloads=("fork_join", _BURST),
    )
    base.update(changes)
    return CampaignSpec(**base)


def test_workload_axis_multiplies_size_and_expansion():
    spec = _axis_spec()
    cells = spec.expand()
    assert spec.size() == 2 * 2 * 2 * 2
    assert len(cells) == spec.size()
    names = [cell.workload.name for cell in cells]
    # Model-major, workload next: each model sweeps the whole fault axis
    # under fork_join before repeating it under the burst workload.
    assert names == (["fork_join"] * 4 + ["burst-fan"] * 4) * 2
    assert len({cell.key() for cell in cells}) == len(cells)
    assert all(cell.cell()[-1] == cell.workload.name for cell in cells)


def test_empty_workload_axis_expands_byte_identically():
    with_axis = _axis_spec(workloads=()).expand()
    without = CampaignSpec(
        name="workload-axis", models=("none", "ffw"), seeds=(7, 8),
        fault_counts=(0, 2), config=_CONFIG,
    ).expand()
    assert [c.key() for c in with_axis] == [c.key() for c in without]


def test_workload_axis_round_trips_through_dict():
    spec = _axis_spec()
    clone = CampaignSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert clone == spec
    assert clone.to_dict() == spec.to_dict()
    assert [c.key() for c in clone.expand()] == [
        c.key() for c in spec.expand()
    ]


def test_legacy_spec_dict_has_no_workloads_key():
    assert "workloads" not in _axis_spec(workloads=()).to_dict()


def test_duplicate_workload_names_rejected():
    with pytest.raises(ValueError):
        _axis_spec(workloads=("fork_join", "fork_join"))


def test_unknown_workload_rejected():
    with pytest.raises(ValueError):
        _axis_spec(workloads=("no_such_workload",))
