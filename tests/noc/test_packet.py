"""Tests for packets."""

import pytest

from repro.noc.packet import Packet, PacketStatus


def test_defaults():
    packet = Packet(src_node=3, dest_task=2)
    assert packet.status == PacketStatus.IN_FLIGHT
    assert packet.in_flight
    assert packet.dest_node is None
    assert packet.hops == 0
    assert packet.latency() is None


def test_ids_are_unique():
    a = Packet(0, 1)
    b = Packet(0, 1)
    assert a.packet_id != b.packet_id


def test_zero_flits_rejected():
    with pytest.raises(ValueError):
        Packet(0, 1, size_flits=0)


def test_latency_after_delivery():
    packet = Packet(0, 1, created_at=100)
    packet.status = PacketStatus.DELIVERED
    packet.delivered_at = 350
    assert packet.latency() == 250


def test_age():
    packet = Packet(0, 1, created_at=100)
    assert packet.age(400) == 300


def test_is_late_without_deadline_is_false():
    packet = Packet(0, 1)
    assert not packet.is_late(10**9)


def test_is_late_with_deadline():
    packet = Packet(0, 1, created_at=0, deadline=500)
    assert not packet.is_late(500)
    assert packet.is_late(501)


def test_tried_providers_empty_initially():
    packet = Packet(0, 1)
    assert len(packet.tried_providers()) == 0


def test_mark_tried_accumulates():
    packet = Packet(0, 1)
    packet.mark_tried(5)
    packet.mark_tried(9)
    packet.mark_tried(5)
    assert set(packet.tried_providers()) == {5, 9}


def test_instance_and_branch_carried():
    packet = Packet(0, 2, instance=(4, 17), branch=1)
    assert packet.instance == (4, 17)
    assert packet.branch == 1
