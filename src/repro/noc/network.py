"""Network assembly and packet movement.

The :class:`Network` owns the routers, the directed links between adjacent
routers, the routing policy, the provider directory and the deadlock
recovery state, and drives packets hop by hop through simulator events.

Task-addressed delivery works like this:

1. ``send(packet, from_node)`` resolves the nearest healthy provider of the
   packet's destination task (minimised Manhattan distance) and stamps it as
   ``dest_node``;
2. each hop picks the next direction from the fault-aware routing policy,
   waits for the output channel (wormhole occupancy), and re-enters the hop
   engine at the downstream router;
3. at the destination router the packet is checked against the directory —
   if the node switched task or died while the packet was in flight, the
   packet is re-resolved toward a new provider (counted as a reroute), which
   is how traffic follows the adapting task topology;
4. delivery hands the packet to the ``deliver_handler`` installed by the
   platform (the processing element's internal port).

Hot-path notes (the express hop engine)
---------------------------------------
Simulating one heap event per packet per hop is the classic design but pays
kernel overhead (handle allocation, heap push/pop, callback dispatch) on
the hottest path of every table sweep.  The express engine collapses a
multi-hop flight into a *single* scheduled event without changing a single
observable bit:

* the first hop of a flight is always a real event (``_arrive`` never walks
  inline — the injector's enclosing callback, e.g. a PE completion emitting
  several packets, must finish its own same-time work first);
* the hop event callback (``_hop_walk``) processes its arrival and then
  keeps walking subsequent hops *inline*, advancing the simulator clock
  manually, for as long as :meth:`repro.sim.engine.Simulator.try_advance`
  grants it the next hop time.  The gate holds exactly when no pending
  event would dispatch at or before that time, in which case executing the
  hop inline is indistinguishable from scheduling it — per-hop link claims,
  router counters, observer notifications and model reactions all happen
  at their exact hop timestamps, so FFW lateness arming, NI counting and
  adaptive port choices are bit-identical with the express path on or off;
* the gate is re-evaluated after every hop's side effects, so a model that
  fires mid-flight (scheduling or cancelling events) automatically demotes
  the rest of the flight to ordinary event scheduling;
* mid-flight task switches and faults need no special epoch machinery: the
  walker runs the same per-hop checks (failure, destination task, provider
  re-resolution) as the event path, at the same simulated times.

Per-hop lookups are precomputed: ``_hop_table[node][direction]`` holds the
``(neighbor, link, entry port)`` triple, replacing topology math, link dict
hashing and the reverse-direction lookup on every hop.
"""

from repro.noc.deadlock import DeadlockRecovery
from repro.noc.link import Link
from repro.noc.packet import PacketStatus
from repro.noc.router import Router, RouterConfig
from repro.noc.routing import (
    ProviderDirectory,
    RoutingPolicy,
    UnroutableError,
)
from repro.noc.topology import MeshTopology, normalize_edge, opposite


class Network:
    """The NoC: routers, links and packet transport.

    Parameters
    ----------
    sim:
        The discrete-event simulator.
    topology:
        A :class:`MeshTopology`; defaults to the Centurion 16×8 grid.
    flit_time / wire_latency:
        Link timing (µs per flit, µs propagation).
    router_config:
        Prototype :class:`RouterConfig` copied into every router.
    deadlock_wait_limit:
        Channel-wait bound for deadlock recovery (µs), or ``None``.
    max_reroutes:
        How many times a packet may be re-resolved to a new provider before
        being dropped (guards against pathological switch storms).
    fast_path:
        Enable the express hop engine (see module docstring).  Results are
        bit-identical either way; disabling it exists for A/B verification
        and kernel debugging.
    trace:
        Optional :class:`repro.sim.trace.TraceRecorder`.
    """

    def __init__(self, sim, topology=None, flit_time=1, wire_latency=1,
                 router_config=None, deadlock_wait_limit=50_000,
                 max_reroutes=8, fast_path=True, trace=None):
        self.sim = sim
        self.topology = topology if topology is not None else MeshTopology()
        self.policy = RoutingPolicy(self.topology)
        self.directory = ProviderDirectory(self.topology)
        self.deadlock = DeadlockRecovery(deadlock_wait_limit)
        self.max_reroutes = max_reroutes
        self.fast_path = fast_path
        self.trace = trace
        # Per-category recorder shortcuts: the default sweeps disable the
        # per-packet categories, so the hot paths skip the record() call
        # (and its keyword packing) entirely instead of filtering inside.
        self._trace_delivered = (
            trace if trace is not None and trace.enabled("packet_delivered")
            else None
        )
        self._trace_dropped = (
            trace if trace is not None and trace.enabled("packet_dropped")
            else None
        )
        self._trace_corrupted = (
            trace if trace is not None and trace.enabled("packet_corrupted")
            else None
        )
        prototype = router_config if router_config is not None else RouterConfig()
        self.routers = {
            node: Router(node, prototype.copy())
            for node in self.topology.node_ids()
        }
        self.links = {}
        #: Per-node hop lookup: direction -> (neighbor, link, entry port).
        self._hop_table = {}
        for node in self.topology.node_ids():
            hops = {}
            for direction, neighbor in self.topology.neighbors(node).items():
                link = Link(
                    node, neighbor, flit_time=flit_time,
                    wire_latency=wire_latency,
                )
                self.links[(node, neighbor)] = link
                hops[direction] = (neighbor, link, opposite(direction))
            self._hop_table[node] = hops
        self.deliver_handler = None
        self.failed_nodes = set()
        #: Failed mesh edges, normalised to ``(lo, hi)`` node pairs.
        self.failed_links = set()
        #: Degraded mesh edges: normalised edge -> active flit-time factor.
        self.degraded_links = {}
        #: Mesh edges currently corrupting the packets that cross them.
        self.corrupting_links = set()
        #: Per-node channel-wait override: node id -> wait limit (µs)
        #: tighter than the config-wide deadlock bound.  Empty on every
        #: dynamics-free run, which keeps the hot routing path on its
        #: historic branch (see ``_route_step``).
        self.deadlock_pressure = {}
        #: Hops executed inline by the express engine (diagnostic only —
        #: deliberately kept out of ``stats`` so fast/slow runs compare
        #: equal on the experiment-facing counters).
        self.express_hops = 0
        self.stats = {
            "sent": 0,
            "delivered": 0,
            "dropped_deadlock": 0,
            "dropped_no_provider": 0,
            "dropped_fault": 0,
            "reroutes": 0,
            "hops": 0,
        }

    # -- wiring ----------------------------------------------------------------

    def set_deliver_handler(self, handler):
        """Install ``handler(packet, node_id)`` called on delivery."""
        self.deliver_handler = handler

    def router(self, node_id):
        """The router at ``node_id``."""
        return self.routers[node_id]

    def link(self, src, dst):
        """The directed link ``src -> dst`` (KeyError if not adjacent)."""
        return self.links[(src, dst)]

    # -- faults -------------------------------------------------------------------

    def fail_node(self, node_id):
        """Kill a router (and its node's provider entry); reroutes adapt."""
        if node_id in self.failed_nodes:
            return
        self.failed_nodes.add(node_id)
        self.routers[node_id].fail()
        self.directory.mark_failed(node_id)
        self.policy.set_failed(self.failed_nodes)
        if self.trace is not None:
            self.trace.record(self.sim.now, "node_failed", node=node_id)

    def recover_node(self, node_id):
        """Un-fail a router; routing tables heal and traffic flows again.

        The node rejoins as a blank forwarding element — it carries no
        task until the platform (or its intelligence) assigns one, so the
        provider directory needs no version bump.
        """
        if node_id not in self.failed_nodes:
            return
        self.failed_nodes.discard(node_id)
        self.routers[node_id].recover()
        self.directory.mark_recovered(node_id)
        self.policy.set_failed(self.failed_nodes)
        if self.trace is not None:
            self.trace.record(self.sim.now, "node_recovered", node=node_id)

    def fail_link(self, a, b):
        """Kill the mesh edge ``a — b`` (both channel directions).

        Routing detours around the edge exactly like it detours around a
        dead router: the policy's caches invalidate and the BFS table
        treats the edge as missing.
        """
        if (a, b) not in self.links:
            raise KeyError("nodes {} and {} are not adjacent".format(a, b))
        edge = normalize_edge(a, b)
        if edge in self.failed_links:
            return
        self.failed_links.add(edge)
        self.links[(a, b)].fail()
        self.links[(b, a)].fail()
        self.policy.set_failed_links(self.failed_links)
        if self.trace is not None:
            self.trace.record(
                self.sim.now, "link_failed", src=edge[0], dst=edge[1]
            )

    def recover_link(self, a, b):
        """Re-enable a failed mesh edge; XY routes return when clear."""
        edge = normalize_edge(a, b)
        if edge not in self.failed_links:
            return
        self.failed_links.discard(edge)
        self.links[(a, b)].recover()
        self.links[(b, a)].recover()
        self.policy.set_failed_links(self.failed_links)
        if self.trace is not None:
            self.trace.record(
                self.sim.now, "link_recovered", src=edge[0], dst=edge[1]
            )

    def link_failed(self, a, b):
        """True when the mesh edge ``a — b`` is currently failed."""
        return normalize_edge(a, b) in self.failed_links

    def degrade_link(self, a, b, factor):
        """Slow the mesh edge ``a — b`` down (both channel directions).

        A partial failure: the edge stays routable — XY routes keep
        using it and the BFS detour table ignores it — but every packet
        crossing it holds the wire ``factor`` times longer, which the
        adaptive routing mode and the congestion-sensing models feel as
        persistent local congestion.  Re-degrading an already-degraded
        edge re-applies the (nominal-based) factor — calls do not
        stack.  Overlap arbitration (worst active claim governs, expiry
        re-evaluates the rest) lives in the
        :class:`~repro.platform.faults.FaultInjector`.
        """
        if (a, b) not in self.links:
            raise KeyError("nodes {} and {} are not adjacent".format(a, b))
        edge = normalize_edge(a, b)
        self.degraded_links[edge] = factor
        self.links[(a, b)].degrade(factor)
        self.links[(b, a)].degrade(factor)
        if self.trace is not None:
            self.trace.record(
                self.sim.now, "link_degraded",
                src=edge[0], dst=edge[1], factor=factor,
            )

    def restore_link(self, a, b):
        """Undo a degradation; the edge returns to its nominal timing."""
        edge = normalize_edge(a, b)
        if edge not in self.degraded_links:
            return
        del self.degraded_links[edge]
        self.links[(a, b)].restore_timing()
        self.links[(b, a)].restore_timing()
        if self.trace is not None:
            self.trace.record(
                self.sim.now, "link_degrade_recovered",
                src=edge[0], dst=edge[1],
            )

    def link_degraded(self, a, b):
        """True when the mesh edge ``a — b`` is currently degraded."""
        return normalize_edge(a, b) in self.degraded_links

    def corrupt_link(self, a, b):
        """Mark the mesh edge ``a — b`` as corrupting (both directions).

        Packets that cross the edge are still carried — the wire time is
        spent and delivery is counted — but arrive flagged
        ``corrupted``, so the node discards the payload and the
        application-level metrics record the miss.
        """
        if (a, b) not in self.links:
            raise KeyError("nodes {} and {} are not adjacent".format(a, b))
        edge = normalize_edge(a, b)
        if edge in self.corrupting_links:
            return
        self.corrupting_links.add(edge)
        self.links[(a, b)].corrupting = True
        self.links[(b, a)].corrupting = True
        if self.trace is not None:
            self.trace.record(
                self.sim.now, "link_corrupting", src=edge[0], dst=edge[1]
            )

    def clean_link(self, a, b):
        """Stop the mesh edge ``a — b`` corrupting traffic."""
        edge = normalize_edge(a, b)
        if edge not in self.corrupting_links:
            return
        self.corrupting_links.discard(edge)
        self.links[(a, b)].corrupting = False
        self.links[(b, a)].corrupting = False
        if self.trace is not None:
            self.trace.record(
                self.sim.now, "link_corrupt_recovered",
                src=edge[0], dst=edge[1],
            )

    def link_corrupting(self, a, b):
        """True when the mesh edge ``a — b`` currently corrupts packets."""
        return normalize_edge(a, b) in self.corrupting_links

    def set_deadlock_pressure(self, node_id, wait_limit_us):
        """Tighten the channel-wait bound at one router.

        A packet waiting at ``node_id`` for a busy output channel is
        dropped (as a deadlock casualty) once its wait exceeds
        ``wait_limit_us``, even while the config-wide
        ``deadlock_wait_limit`` would still tolerate it.  Overlap
        arbitration (tightest active claim governs) lives in the
        :class:`~repro.platform.faults.FaultInjector`.
        """
        if self.deadlock_pressure.get(node_id) == wait_limit_us:
            return
        self.deadlock_pressure[node_id] = wait_limit_us
        if self.trace is not None:
            self.trace.record(
                self.sim.now, "deadlock_pressured",
                node=node_id, wait_limit_us=wait_limit_us,
            )

    def clear_deadlock_pressure(self, node_id):
        """Return one router to the config-wide channel-wait bound."""
        if node_id not in self.deadlock_pressure:
            return
        del self.deadlock_pressure[node_id]
        if self.trace is not None:
            self.trace.record(
                self.sim.now, "deadlock_pressure_recovered", node=node_id
            )

    # -- sending ---------------------------------------------------------------------

    def send(self, packet, from_node):
        """Inject ``packet`` at ``from_node``'s router, resolving a provider.

        Returns True if the packet entered the network (or was delivered
        locally), False if it was dropped immediately for lack of provider
        or a failed source router.
        """
        self.stats["sent"] += 1
        packet.status = PacketStatus.IN_FLIGHT
        packet.delivered_at = None
        if from_node in self.failed_nodes:
            self._drop(packet, PacketStatus.DROPPED_FAULT)
            return False
        dest = self.directory.nearest_provider(from_node, packet.dest_task)
        if dest is None:
            self._drop(packet, PacketStatus.DROPPED_NO_PROVIDER,
                       at_node=from_node)
            return False
        packet.dest_node = dest
        self._arrive(packet, from_node)
        return True

    def send_multicast(self, packets, from_node):
        """Send sibling packets to *distinct* nearest providers.

        The paper's discussion names multicast routing as the extension
        that "exploits the inherent parallelism of a task graph": the fork
        branches of one instance leave together and must not all pile onto
        the same provider, so the k-th packet resolves to the k-th nearest
        provider of its task.  Falls back to reusing providers when fewer
        than ``len(packets)`` exist.  Returns the number of packets that
        entered the network.

        The siblings' first-hop events are bulk-inserted through
        :meth:`repro.sim.engine.Simulator.schedule_many_at` — one batch
        per generated instance instead of one heap push per branch.
        """
        chosen = set()
        entered = 0
        first_hops = []
        for packet in packets:
            self.stats["sent"] += 1
            packet.status = PacketStatus.IN_FLIGHT
            packet.delivered_at = None
            if from_node in self.failed_nodes:
                self._drop(packet, PacketStatus.DROPPED_FAULT)
                continue
            dest = self.directory.nearest_provider(
                from_node, packet.dest_task, exclude=chosen
            )
            if dest is None:
                # Fewer healthy providers than branches: reuse the nearest.
                dest = self.directory.nearest_provider(
                    from_node, packet.dest_task
                )
            if dest is None:
                self._drop(packet, PacketStatus.DROPPED_NO_PROVIDER,
                           at_node=from_node)
                continue
            chosen.add(dest)
            packet.dest_node = dest
            self._arrive(packet, from_node, defer=first_hops)
            entered += 1
        if first_hops:
            self.sim.schedule_many_at(first_hops)
        return entered

    def redirect(self, packet, from_node, exclude=()):
        """Divert an in-network packet toward another provider.

        Used by full processing-element buffers (backpressure): the packet
        is re-resolved from ``from_node`` excluding the given providers and
        re-enters the hop engine there.  Returns True unless the packet had
        to be dropped (no alternative provider or reroute budget exhausted).
        """
        packet.status = PacketStatus.IN_FLIGHT
        packet.delivered_at = None
        if packet.reroutes > self.max_reroutes:
            self._drop(packet, PacketStatus.DROPPED_NO_PROVIDER,
                       at_node=from_node)
            return False
        dest = self.directory.nearest_provider(
            from_node, packet.dest_task, exclude=exclude
        )
        if dest is None:
            self._drop(packet, PacketStatus.DROPPED_NO_PROVIDER,
                       at_node=from_node)
            return False
        self.stats["reroutes"] += 1
        packet.dest_node = dest
        self._arrive(packet, from_node)
        return True

    # -- hop engine ---------------------------------------------------------------------

    def _arrive(self, packet, node, defer=None):
        """Packet is at ``node``'s router at the current simulation time.

        Injection entry point (send / multicast / redirect / requeue).  The
        first hop is always scheduled as a real event: the caller's
        enclosing callback may still have same-time work to do (a PE
        completion emitting several packets, a task switch requeueing a
        buffer), so the walk must not advance the clock from here.  With
        ``defer`` set, the hop event is appended to the list as a
        ``(time, callback)`` pair instead of scheduled — used by multicast
        to bulk-insert sibling first hops.
        """
        if not packet.in_flight:
            return
        if node in self.failed_nodes:
            self._drop(packet, PacketStatus.DROPPED_FAULT)
            return
        step = self._route_step(packet, node)
        if step is None:
            return
        neighbor, in_port, arrival_time = step
        callback = (
            lambda p=packet, n=neighbor, d=in_port: self._hop_walk(p, n, d)
        )
        if defer is None:
            self.sim.post_at(arrival_time, callback)
        else:
            defer.append((arrival_time, callback))

    def _hop_walk(self, packet, node, in_port):
        """Hop-event callback: process this arrival, then walk while safe.

        Each iteration is one router arrival: the same checks, counters and
        routing decisions as the one-event-per-hop engine, at the same
        simulated time.  Between hops the walker asks the kernel's
        ``try_advance`` gate for the next arrival time; if anything else is
        due first (including events just scheduled by an observer reacting
        to *this* hop), the remainder of the flight is demoted to a real
        event and dispatch order is preserved exactly.
        """
        sim = self.sim
        fast_path = self.fast_path
        routers = self.routers
        failed = self.failed_nodes
        while True:
            if not packet.in_flight:
                return
            if node in failed:
                self._drop(packet, PacketStatus.DROPPED_FAULT)
                return
            # Inlined Router.record_port(in_port, incoming=True).
            routers[node].ports[in_port].packets_in += 1
            step = self._route_step(packet, node)
            if step is None:
                return
            neighbor, in_port, arrival_time = step
            if fast_path and sim.try_advance(arrival_time):
                self.express_hops += 1
                node = neighbor
                continue
            sim.post_at(
                arrival_time,
                lambda p=packet, n=neighbor, d=in_port: self._hop_walk(
                    p, n, d
                ),
            )
            return

    def _route_step(self, packet, node):
        """One router's worth of forwarding work at the current time.

        Delivery checks, provider re-resolution, output-port choice,
        deadlock bound, wormhole link claim and the router's counters and
        observer notifications.  Returns ``None`` on a terminal outcome
        (delivered or dropped), else ``(neighbor, entry port, arrival
        time)`` for the next hop.
        """
        router = self.routers[node]
        if node == packet.dest_node:
            if self.directory.task_of(node) == packet.dest_task:
                self._deliver(packet, node, router)
                return None
            # Destination changed task while the packet was in flight:
            # re-resolve toward the task's new nearest provider.
            if not self._reresolve(packet, node):
                return None
            if packet.dest_node == node:
                self._deliver(packet, node, router)
                return None
        try:
            direction = self.policy.next_direction(node, packet.dest_node)
        except UnroutableError:
            if not self._reresolve(packet, node, exclude=(packet.dest_node,)):
                return None
            if packet.dest_node == node:
                self._deliver(packet, node, router)
                return None
            try:
                direction = self.policy.next_direction(node, packet.dest_node)
            except UnroutableError:
                self._drop(packet, PacketStatus.DROPPED_NO_PROVIDER,
                           at_node=node)
                return None
        if router.config.routing_mode == "adaptive":
            direction = self._adaptive_port(router, node, packet, direction)
        hop = self._hop_table[node].get(direction)
        if hop is None:
            self._drop(packet, PacketStatus.DROPPED_NO_PROVIDER,
                       at_node=node)
            return None
        neighbor, link, in_port = hop
        if not link.enabled:
            # The policy avoids failed links once its caches invalidate;
            # this guards the same-instant race (link died between the
            # direction choice and the claim).
            self._drop(packet, PacketStatus.DROPPED_FAULT, at_node=node)
            return None
        now = self.sim.now
        wait = link.busy_until - now
        # The pressure dict is empty on dynamics-free runs, so the
        # short-circuit keeps this hot path on its historic branch; the
        # ``.get(node, wait)`` default makes an un-pressured node's
        # comparison trivially false.
        if self.deadlock.should_drop(wait) or (
            self.deadlock_pressure
            and wait > self.deadlock_pressure.get(node, wait)
        ):
            self.deadlock.record_drop(now)
            self._drop(packet, PacketStatus.DROPPED_DEADLOCK, at_node=node)
            return None
        router.notify_routed(packet, to_internal=False)
        # Inlined Router.record_port(direction, incoming=False).
        router.ports[direction].packets_out += 1
        departure = now + router.config.router_latency
        arrival_time = link.transfer(packet, departure)
        if link.corrupting:
            packet.corrupted = True
        packet.hops += 1
        self.stats["hops"] += 1
        return neighbor, in_port, arrival_time

    def _adaptive_port(self, router, node, packet, policy_direction):
        """Congestion-aware minimal output-port choice (paper §V).

        When the router is in ``adaptive`` mode and more than one healthy
        *minimal* direction exists, pick the output whose channel is least
        busy right now; ties keep the dimension-ordered choice.  The
        override only applies when the policy's own direction is among the
        minimal candidates — when the policy is detouring around faults,
        its direction stands, which keeps detours loop-free.  Minimal
        adaptive routing can in principle deadlock; like the real
        Centurion, the deadlock-recovery timeout is the backstop.
        """
        candidates = self.policy.minimal_directions(node, packet.dest_node)
        if len(candidates) < 2 or policy_direction not in candidates:
            return policy_direction
        now = self.sim.now
        hops = self._hop_table[node]
        best = policy_direction
        best_wait = None
        for direction in candidates:
            wait = hops[direction][1].queue_delay(now)
            if best_wait is None or wait < best_wait:
                best = direction
                best_wait = wait
        return best

    # -- terminal outcomes --------------------------------------------------------

    def _deliver(self, packet, node, router):
        router.notify_routed(packet, to_internal=True)
        packet.status = PacketStatus.DELIVERED
        packet.delivered_at = self.sim.now
        self.stats["delivered"] += 1
        if self._trace_delivered is not None:
            self._trace_delivered.record(
                self.sim.now,
                "packet_delivered",
                packet=packet.packet_id,
                node=node,
                task=packet.dest_task,
                hops=packet.hops,
            )
        if packet.corrupted:
            # The flits arrived (delivery is counted, the router sank the
            # packet) but the payload is garbage: the node discards it, so
            # the execution it would have fed never happens — that lost
            # work is the QoS miss the metrics layer accounts.  The stats
            # key is created lazily so runs without corruption faults keep
            # the exact counter dict (and stored-record bytes) of old.
            self.stats["delivered_corrupted"] = (
                self.stats.get("delivered_corrupted", 0) + 1
            )
            router.corrupted_sunk += 1
            if self._trace_corrupted is not None:
                self._trace_corrupted.record(
                    self.sim.now,
                    "packet_corrupted",
                    packet=packet.packet_id,
                    node=node,
                    task=packet.dest_task,
                )
            return
        if self.deliver_handler is not None:
            self.deliver_handler(packet, node)

    def _reresolve(self, packet, node, exclude=()):
        """Pick a new provider for an in-flight packet; False if dropped."""
        packet.reroutes += 1
        self.stats["reroutes"] += 1
        if packet.reroutes > self.max_reroutes:
            self._drop(packet, PacketStatus.DROPPED_NO_PROVIDER,
                       at_node=node)
            return False
        dest = self.directory.nearest_provider(
            node, packet.dest_task, exclude=exclude
        )
        if dest is None:
            self._drop(packet, PacketStatus.DROPPED_NO_PROVIDER,
                       at_node=node)
            return False
        packet.dest_node = dest
        return True

    def _drop(self, packet, status, at_node=None):
        packet.status = status
        key = {
            PacketStatus.DROPPED_DEADLOCK: "dropped_deadlock",
            PacketStatus.DROPPED_NO_PROVIDER: "dropped_no_provider",
            PacketStatus.DROPPED_FAULT: "dropped_fault",
        }[status]
        self.stats[key] += 1
        if at_node is not None:
            router = self.routers.get(at_node)
            if router is not None:
                router.notify_dropped(packet)
        if self._trace_dropped is not None:
            self._trace_dropped.record(
                self.sim.now,
                "packet_dropped",
                packet=packet.packet_id,
                reason=status,
                task=packet.dest_task,
            )

    def __repr__(self):
        return "Network({} nodes, {} failed, stats={})".format(
            self.topology.num_nodes, len(self.failed_nodes), self.stats
        )
