"""Monitors — the sensing half of the Figure 2a surface.

"The embedded intelligence module has access to many of the internal signals
of the router and processor, called 'monitors'."  Event-type monitors
(routing events, internal sinks) reach the models as impulse relays through
the AIM; the classes here are the *polled* monitors: point-in-time reads of
node state that tick-driven model logic samples, each with a tiny uniform
``read()`` interface so pathways can treat them interchangeably.
"""

from repro.noc.topology import DIRECTIONS


class MonitorBank:
    """All polled monitors of one node, keyed by name."""

    def __init__(self, monitors):
        self._monitors = dict(monitors)

    def read(self, name):
        """Read the named monitor's current value."""
        return self._monitors[name].read()

    def read_all(self):
        """Snapshot of every monitor (used by traces and examples)."""
        return {name: mon.read() for name, mon in self._monitors.items()}

    def __contains__(self, name):
        return name in self._monitors

    def names(self):
        """Sorted monitor names."""
        return sorted(self._monitors)


class QueueLengthMonitor:
    """Packets waiting at the node's internal port."""

    def __init__(self, pe):
        self._pe = pe

    def read(self):
        """Current queue depth."""
        return len(self._pe.queue)


class CurrentTaskMonitor:
    """The task the node is currently assigned."""

    def __init__(self, pe):
        self._pe = pe

    def read(self):
        """Current task id (or None)."""
        return self._pe.task_id


class FrequencyMonitor:
    """"The current node frequency" — MHz."""

    def __init__(self, pe):
        self._pe = pe

    def read(self):
        """Current frequency in MHz."""
        return self._pe.frequency.current_mhz


class TemperatureMonitor:
    """"Local temperature sensing" — ring-oscillator stand-in, °C."""

    def __init__(self, pe, sim):
        self._pe = pe
        self._sim = sim

    def read(self):
        """Current temperature in degrees Celsius."""
        return self._pe.thermal.temperature(self._sim.now)


class WatchdogMonitor:
    """"Watchdog signals from the node" — True when expired."""

    def __init__(self, pe, sim):
        self._pe = pe
        self._sim = sim

    def read(self):
        """True when the watchdog has expired."""
        return self._pe.watchdog.expired(self._sim.now)


class NeighborTaskMonitor:
    """"Signals from intelligence modules of neighbouring nodes".

    Reads the current task of each mesh neighbour (dead neighbours read as
    ``None``), keyed by direction.  In hardware this is a dedicated
    sideband between adjacent AIMs; the provider directory carries the same
    information here.
    """

    def __init__(self, network, node_id):
        self._network = network
        self._node_id = node_id

    def read(self):
        """Mapping direction -> neighbouring node's current task."""
        topology = self._network.topology
        directory = self._network.directory
        result = {}
        for direction in DIRECTIONS:
            neighbor = topology.neighbor(self._node_id, direction)
            if neighbor is None:
                continue
            result[direction] = directory.task_of(neighbor)
        return result


class RoutedTaskCountMonitor:
    """Cumulative routed-packet counts per destination task at the router."""

    def __init__(self, router):
        self._router = router

    def read(self):
        """Copy of the per-task routed-packet counters."""
        return dict(self._router.task_route_counts)


class RecentTaskQueueMonitor:
    """The router's recent forwarded-task queue (FFW's 'next packet')."""

    def __init__(self, router):
        self._router = router

    def read(self):
        """Copy of the recent forwarded-task queue (oldest first)."""
        return list(self._router.recent_tasks)


def standard_monitor_bank(sim, pe, router, network):
    """Build the full Figure 2a monitor set for one node."""
    return MonitorBank(
        {
            "queue_length": QueueLengthMonitor(pe),
            "current_task": CurrentTaskMonitor(pe),
            "frequency_mhz": FrequencyMonitor(pe),
            "temperature_c": TemperatureMonitor(pe, sim),
            "watchdog_expired": WatchdogMonitor(pe, sim),
            "neighbor_tasks": NeighborTaskMonitor(network, pe.node_id),
            "routed_task_counts": RoutedTaskCountMonitor(router),
            "recent_task_queue": RecentTaskQueueMonitor(router),
        }
    )
