"""Tests for the command-line interface."""

import json

import pytest

from repro.experiments.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_run_small(capsys, tmp_path):
    out_file = tmp_path / "run.json"
    code = main([
        "run", "--model", "none", "--seed", "3", "--small",
        "--json", str(out_file),
    ])
    assert code == 0
    captured = capsys.readouterr().out
    assert "settled_performance" in captured
    payload = json.loads(out_file.read_text())
    assert payload["row"]["model"] == "none"
    assert "active_nodes" in payload["series"]


def test_run_with_faults_small(capsys):
    code = main(["run", "--model", "ffw", "--seed", "3", "--small",
                 "--faults", "2"])
    assert code == 0
    assert "recovery_time_ms" in capsys.readouterr().out


def test_run_with_scenario_file(capsys, tmp_path):
    scenario_file = tmp_path / "blip.json"
    scenario_file.write_text(json.dumps({
        "name": "blip",
        "events": [
            {"at_us": 100_000, "count": 2, "duration_us": 20_000},
            {"at_us": 120_000, "kind": "link", "count": 1},
        ],
    }))
    out_file = tmp_path / "run.json"
    code = main([
        "run", "--model", "none", "--seed", "3", "--small",
        "--scenario", str(scenario_file), "--json", str(out_file),
    ])
    assert code == 0
    assert "scenario" in capsys.readouterr().out
    payload = json.loads(out_file.read_text())
    assert payload["row"]["scenario"] == "blip"


def test_run_rejects_faults_plus_scenario(tmp_path):
    scenario_file = tmp_path / "blip.json"
    scenario_file.write_text(json.dumps({
        "name": "blip", "events": [{"at_us": 1000, "count": 1}],
    }))
    with pytest.raises(SystemExit):
        main([
            "run", "--small", "--faults", "2",
            "--scenario", str(scenario_file),
        ])


def test_campaign_spec_with_scenarios(capsys, tmp_path):
    spec_file = tmp_path / "spec.json"
    spec_file.write_text(json.dumps({
        "name": "scenario-sweep",
        "models": ["none"],
        "seeds": [1],
        "base": "small",
        "config": {"horizon_us": 100_000},
        "scenarios": [
            {"name": "blip",
             "events": [{"at_us": 50_000, "count": 2}]},
        ],
    }))
    code = main([
        "campaign", "--spec", str(spec_file),
        "--dir", str(tmp_path / "store"), "--processes", "0",
    ])
    assert code == 0
    rows = [
        json.loads(line)
        for line in capsys.readouterr().out.strip().splitlines()
    ]
    assert rows and all(row["scenario"] == "blip" for row in rows)


def test_parser_table2_fault_list():
    args = build_parser().parse_args(["table2", "--faults", "0,8"])
    assert args.faults == "0,8"


def test_parser_defaults():
    args = build_parser().parse_args(["table1"])
    assert args.runs == 15
    assert args.processes is None
    assert args.resume is None
    args = build_parser().parse_args(["figure4"])
    assert args.seed == 42


def test_parser_resume_default_directory():
    args = build_parser().parse_args(["table2", "--resume"])
    assert args.resume == "campaigns/table2"
    args = build_parser().parse_args(["table2", "--resume", "elsewhere"])
    assert args.resume == "elsewhere"


def test_parser_campaign_requires_source():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["campaign"])
    args = build_parser().parse_args(["campaign", "--paper", "table2"])
    assert args.paper == "table2"


def test_parser_campaign_worker_and_dedup_flags():
    args = build_parser().parse_args([
        "campaign", "--paper", "table2",
        "--workers", "4", "--worker-id", "1", "--no-dedup",
    ])
    assert args.workers == 4
    assert args.worker_id == 1
    assert args.no_dedup
    args = build_parser().parse_args(["campaign", "--paper", "table1"])
    assert args.workers is None and args.worker_id is None
    assert not args.no_dedup and args.dedup_root is None
    with pytest.raises(SystemExit):
        main(["campaign", "--paper", "table1", "--workers", "2"])


def test_parser_campaign_management_subcommands():
    args = build_parser().parse_args(["campaign-ls"])
    assert args.root == "campaigns" and args.dirs == []
    args = build_parser().parse_args(["campaign-gc", "--apply", "a", "b"])
    assert args.apply and args.dirs == ["a", "b"]
    args = build_parser().parse_args(["campaign-gc"])
    assert not args.apply  # dry-run is the default
    with pytest.raises(SystemExit):
        build_parser().parse_args(["campaign-gc", "--dry-run", "--apply"])
    args = build_parser().parse_args(
        ["campaign-export", "--format", "csv", "--out", "x.csv"]
    )
    assert args.format == "csv" and args.out == "x.csv"


def test_campaign_worker_sharded_run_skips_artifact(capsys, tmp_path):
    spec_file = _mini_spec_file(tmp_path)
    store = str(tmp_path / "store")
    assert main([
        "campaign", "--spec", spec_file, "--dir", store, "--processes", "0",
        "--workers", "2", "--worker-id", "0", "--no-dedup",
    ]) == 0
    captured = capsys.readouterr()
    assert "cells on other shards" in captured.err
    assert "Foraging For Work" not in captured.out  # partial: no artefact
    # The remaining shard + a plain merge pass assembles the artefact.
    assert main([
        "campaign", "--spec", spec_file, "--dir", store, "--processes", "0",
        "--workers", "2", "--worker-id", "1", "--no-dedup",
    ]) == 0
    capsys.readouterr()
    assert main([
        "campaign", "--spec", spec_file, "--dir", store, "--processes", "0",
    ]) == 0
    merged = capsys.readouterr()
    assert "0 executed, 8 cached" in merged.err
    assert "Foraging For Work" in merged.out


def _mini_spec_file(tmp_path):
    spec = {
        "name": "mini",
        "models": ["none", "ffw"],
        "seeds": [1, 2],
        "fault_counts": [0, 2],
        "base": "small",
        "kind": "table2",
    }
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(spec))
    return str(path)


def test_campaign_subcommand_cold_then_resumed(capsys, tmp_path):
    spec_file = _mini_spec_file(tmp_path)
    store = str(tmp_path / "store")
    argv = ["campaign", "--spec", spec_file, "--dir", store,
            "--processes", "1"]
    assert main(argv) == 0
    cold = capsys.readouterr()
    assert "8 executed, 0 cached" in cold.err
    assert "Foraging For Work" in cold.out
    assert main(argv) == 0
    warm = capsys.readouterr()
    assert "0 executed, 8 cached" in warm.err
    assert warm.out == cold.out  # bit-identical artefact off the store


def test_campaign_dedup_defaults_to_sibling_campaigns(capsys, tmp_path):
    """Sweeps under a shared root dedup by default; an ad-hoc store with
    no sibling campaigns never scans (or indexes) its parent."""
    root = tmp_path / "campaigns"
    spec = {"name": "first", "models": ["none", "ffw"], "seeds": [1, 2],
            "fault_counts": [0], "base": "small", "kind": "grid"}
    first_file = tmp_path / "first.json"
    first_file.write_text(json.dumps(spec))
    second_file = tmp_path / "second.json"
    second_file.write_text(json.dumps(
        dict(spec, name="second", fault_counts=[0, 2])
    ))
    assert main(["campaign", "--spec", str(first_file),
                 "--dir", str(root / "first"), "--processes", "0"]) == 0
    # First campaign has no siblings: nothing scanned, no index dropped.
    assert not (tmp_path / "index.jsonl").exists()
    assert not (root / "index.jsonl").exists()
    capsys.readouterr()
    assert main(["campaign", "--spec", str(second_file),
                 "--dir", str(root / "second"), "--processes", "0"]) == 0
    err = capsys.readouterr().err
    assert "4 deduped" in err        # the shared zero-fault cells
    assert (root / "index.jsonl").exists()
    capsys.readouterr()
    # --no-dedup opts out entirely.
    assert main(["campaign", "--spec", str(second_file),
                 "--dir", str(root / "optout"), "--processes", "0",
                 "--no-dedup"]) == 0
    assert "deduped" not in capsys.readouterr().err


def test_campaign_fresh_recomputes(capsys, tmp_path):
    spec_file = _mini_spec_file(tmp_path)
    store = str(tmp_path / "store")
    base = ["campaign", "--spec", spec_file, "--dir", store,
            "--processes", "1"]
    assert main(base) == 0
    capsys.readouterr()
    assert main(base + ["--fresh"]) == 0
    assert "8 executed, 0 cached" in capsys.readouterr().err


def _write_synthetic_root(root, perf=3.0):
    """A store root with one campaign of hand-written record lines."""
    import os

    from repro.campaign.store import encode_line

    directory = os.path.join(str(root), "camp")
    os.makedirs(directory, exist_ok=True)
    with open(os.path.join(directory, "results.jsonl"), "w") as handle:
        for i, model in enumerate(("none", "foraging_for_work")):
            record = {"key": "cell-{}".format(i), "row": {
                "model": model, "seed": i, "faults": 0,
                "settling_time_ms": 10.0 + i,
                "settled_performance": perf,
                "recovery_time_ms": 5.0,
                "recovered_performance": perf,
                "total_switches": i,
            }}
            handle.write(encode_line(record) + "\n")
    return str(root)


def test_parser_report_and_compare_subcommands():
    args = build_parser().parse_args(
        ["campaign-report", "--root", "r", "--out", "site", "--title", "t"]
    )
    assert args.root == "r" and args.out == "site" and args.title == "t"
    args = build_parser().parse_args(["campaign-compare", "old", "new"])
    assert args.baseline == "old" and args.candidate == "new"
    assert args.threshold == 0.05
    args = build_parser().parse_args(
        ["campaign-compare", "a", "b", "--threshold", "0.2"]
    )
    assert args.threshold == 0.2


def test_every_subcommand_help_points_at_docs():
    parser = build_parser()
    assert "docs/cli.md" in parser.format_help()
    sub_actions = [
        action for action in parser._actions
        if hasattr(action, "choices") and action.choices
    ]
    for name, sub in sub_actions[0].choices.items():
        assert "docs/cli.md" in sub.format_help(), (
            "{} --help does not point at docs/cli.md".format(name)
        )


def test_campaign_report_cli(capsys, tmp_path):
    root = _write_synthetic_root(tmp_path / "root")
    out = tmp_path / "json.out"
    assert main(["campaign", "report", "--root", root,
                 "--json", str(out)]) == 0
    html_path = capsys.readouterr().out.strip()
    page = open(html_path).read()
    assert page.startswith("<!DOCTYPE html>")
    assert "foraging_for_work" in page and "none" in page
    summary = json.loads(open(str(out)).read())
    assert summary["rows"] == 2
    # Re-running writes the byte-identical page.
    assert main(["campaign", "report", "--root", root]) == 0
    assert open(html_path).read() == page


def test_campaign_compare_cli_exit_codes(capsys, tmp_path):
    baseline = _write_synthetic_root(tmp_path / "base", perf=3.0)
    same = _write_synthetic_root(tmp_path / "same", perf=3.0)
    worse = _write_synthetic_root(tmp_path / "worse", perf=2.0)
    assert main(["campaign", "compare", baseline, same]) == 0
    assert capsys.readouterr().out.strip().endswith("OK — no regressions")
    out = tmp_path / "cmp.json"
    assert main(["campaign", "compare", baseline, worse,
                 "--json", str(out)]) == 1
    verdict = capsys.readouterr().out
    assert "REGRESSION" in verdict and "FAIL" in verdict
    payload = json.loads(open(str(out)).read())
    assert payload["ok"] is False and payload["regressions"]


def test_campaign_export_streams_csv_and_jsonl(capsys, tmp_path):
    root = _write_synthetic_root(tmp_path / "root")
    csv_out = tmp_path / "all.csv"
    assert main(["campaign", "export", "--root", root, "--format", "csv",
                 "--out", str(csv_out)]) == 0
    lines = open(str(csv_out)).read().splitlines()
    assert lines[0].startswith("campaign,key,model,seed,faults")
    assert len(lines) == 3
    capsys.readouterr()
    assert main(["campaign", "export", "--root", root]) == 0
    jsonl = capsys.readouterr().out.strip().splitlines()
    assert len(jsonl) == 2
    assert json.loads(jsonl[0])["key"] == "cell-0"
