"""Tests for the sharded campaign executor and checkpoint/resume."""

import os

import pytest

from repro.campaign.executor import run_campaign
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import ResultStore
from repro.platform.config import PlatformConfig


@pytest.fixture
def spec():
    return CampaignSpec(
        name="exec-test",
        models=("none", "foraging_for_work"),
        seeds=(1, 2),
        fault_counts=(0, 2),
        config=PlatformConfig.small(),
    )


def test_cold_run_executes_every_cell(spec):
    report = run_campaign(spec, processes=1)
    assert report.executed == spec.size()
    assert report.cached == 0
    assert [r.seed for r in report.results] == [
        d.seed for d in report.descriptors
    ]


def test_results_follow_grid_order(spec):
    report = run_campaign(spec, processes=1)
    for descriptor, result in report.pairs():
        assert (result.model, result.seed, result.faults) == (
            descriptor.model, descriptor.seed, descriptor.faults
        )


def test_second_run_is_all_cache_hits(spec, tmp_path):
    store = str(tmp_path)
    cold = run_campaign(spec, store=store, processes=1)
    warm = run_campaign(spec, store=store, processes=1)
    assert warm.executed == 0
    assert warm.cached == spec.size()
    assert [r.as_row() for r in warm.results] == [
        r.as_row() for r in cold.results
    ]


def test_interrupted_campaign_resumes(spec, tmp_path):
    store_dir = str(tmp_path)
    descriptors = spec.expand()
    # Simulate an interrupted sweep: only the first three cells finished.
    with ResultStore(store_dir) as store:
        from repro.experiments.runner import run_single

        for descriptor in descriptors[:3]:
            store.save_result(descriptor, run_single(*descriptor.job()))
    report = run_campaign(spec, store=store_dir, processes=1)
    assert report.cached == 3
    assert report.executed == spec.size() - 3


def test_fresh_recomputes_despite_store(spec, tmp_path):
    store = str(tmp_path)
    run_campaign(spec, store=store, processes=1)
    fresh = run_campaign(spec, store=store, processes=1, use_cache=False)
    assert fresh.executed == spec.size()
    assert fresh.cached == 0


def test_parallel_matches_sequential(spec):
    sequential = run_campaign(spec, processes=1)
    parallel = run_campaign(spec, processes=2)
    assert [r.as_row() for r in parallel.results] == [
        r.as_row() for r in sequential.results
    ]


def test_progress_reports_every_cell(spec, tmp_path):
    calls = []
    run_campaign(
        spec,
        store=str(tmp_path),
        processes=1,
        progress=lambda done, total, cached: calls.append(
            (done, total, cached)
        ),
    )
    assert calls[-1] == (spec.size(), spec.size(), 0)
    assert len(calls) == spec.size()
    # Resumed: one up-front report covering the cached cells.
    calls.clear()
    run_campaign(
        spec,
        store=str(tmp_path),
        processes=1,
        progress=lambda done, total, cached: calls.append(
            (done, total, cached)
        ),
    )
    assert calls == [(spec.size(), spec.size(), spec.size())]


def test_accepts_open_store_without_closing_it(spec, tmp_path):
    with ResultStore(str(tmp_path)) as store:
        run_campaign(spec, store=store, processes=1)
        # Still usable: the executor only closes stores it opened.
        assert len(store) == spec.size()
        warm = run_campaign(spec, store=store, processes=1)
    assert warm.executed == 0


def test_spec_provenance_written(spec, tmp_path):
    run_campaign(spec, store=str(tmp_path), processes=1)
    assert (tmp_path / "spec.json").exists()


def test_resume_reads_results_stream_exactly_once(spec, tmp_path,
                                                  monkeypatch):
    """Regression: resume paths must hit the memoised key set, never
    re-read ``results.jsonl`` per completed-key check — the whole warm
    pass performs one scan of one stream file."""
    store_dir = str(tmp_path)
    run_campaign(spec, store=store_dir, processes=0)
    scans = []
    real_scan = ResultStore._scan_file

    def counting_scan(self, path):
        scans.append(os.path.basename(path))
        return real_scan(self, path)

    monkeypatch.setattr(ResultStore, "_scan_file", counting_scan)
    warm = run_campaign(spec, store=store_dir, processes=0)
    assert warm.executed == 0
    assert warm.cached == spec.size()  # every cell was a key-set hit
    assert scans == ["results.jsonl"]


def test_completed_key_checks_never_rescan(spec, tmp_path):
    store_dir = str(tmp_path)
    run_campaign(spec, store=store_dir, processes=0)
    store = ResultStore(store_dir)
    assert store.scans == 1
    keys = store.keys()
    for descriptor in spec.expand():
        assert descriptor.key() in keys
        assert store.has_result(descriptor)
    assert store.scans == 1  # memoised: zero additional file reads
