"""Self-organising task allocation from a random mapping (Table I story).

Runs all three evaluated schemes — no intelligence, Network Interaction,
Foraging for Work — on the full Centurion from the same random initial
mapping, and reports how each one's task topology and throughput settle.
This is the paper's §IV-A experiment: both bio-inspired models adapt the
distribution of tasks around the network; FFW settles to the best
performance, NI to roughly the baseline with continuing churn.

Run:  python examples/task_allocation.py       (about 10 s)
"""

from repro import CenturionPlatform, PlatformConfig
from repro.experiments.settling import settling_analysis

SEED = 11


def main():
    results = {}
    for model_name in ("none", "network_interaction", "foraging_for_work"):
        platform = CenturionPlatform(
            PlatformConfig(), model_name=model_name, seed=SEED
        )
        series = platform.run()
        settle_ms, settled_joins = settling_analysis(series, metric="joins")
        results[model_name] = (platform, series, settle_ms, settled_joins)

    baseline_joins = results["none"][3]
    print("Settling from the same random 1:3:1 mapping, seed", SEED)
    print()
    header = "{:<22} {:>11} {:>15} {:>10} {:>22}".format(
        "model", "settle(ms)", "joins/window", "relative", "census 1/2/3"
    )
    print(header)
    print("-" * len(header))
    for model_name, (platform, series, settle_ms, joins) in results.items():
        census = platform.task_census()
        print("{:<22} {:>11.0f} {:>15.2f} {:>9.0f}% {:>22}".format(
            model_name,
            settle_ms,
            joins,
            100.0 * joins / baseline_joins,
            "{}/{}/{}".format(
                census.get(1, 0), census.get(2, 0), census.get(3, 0)
            ),
        ))

    print()
    print("Census evolution (nodes per task, every 200 ms):")
    for model_name, (_p, series, _s, _j) in results.items():
        print("  {}:".format(model_name))
        for task_id in (1, 2, 3):
            samples = series.census[task_id]
            picks = [samples[i] for i in range(19, len(samples), 20)]
            print("    task {}: {}".format(task_id, picks))

    print()
    print("Task switching activity (switches per 10 ms window, first 500 ms):")
    for model_name, (_p, series, _s, _j) in results.items():
        idx = series.window_slice(0, 500)
        total = sum(series.task_switches[i] for i in idx)
        print("  {:<22} {}".format(model_name, total))


if __name__ == "__main__":
    main()
