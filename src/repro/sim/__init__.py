"""Deterministic discrete-event simulation kernel.

This package is the time substrate every other subsystem runs on.  It was
written for the Centurion reproduction but contains nothing specific to the
NoC: it provides an event queue ordered by (time, priority, sequence), a
simulation clock in integer microseconds, seeded random-number streams and
periodic processes.

The kernel is deliberately deterministic: two simulations constructed with
the same seed and the same sequence of ``schedule`` calls produce identical
event orderings, which is what makes the 100-run quartile experiments of the
paper statistically meaningful (every run differs only through its seed).
"""

from repro.sim.engine import Event, EventQueue, Simulator
from repro.sim.process import PeriodicProcess, delayed_call
from repro.sim.rng import RngStreams
from repro.sim.trace import TraceRecorder, TraceRecord
from repro.sim.units import (
    MICROSECONDS_PER_MILLISECOND,
    ms_to_us,
    us_to_ms,
)

__all__ = [
    "Event",
    "EventQueue",
    "Simulator",
    "PeriodicProcess",
    "delayed_call",
    "RngStreams",
    "TraceRecorder",
    "TraceRecord",
    "MICROSECONDS_PER_MILLISECOND",
    "ms_to_us",
    "us_to_ms",
]
