"""Tests for wormhole link occupancy."""

import pytest

from repro.noc.link import Link
from repro.noc.packet import Packet


def test_transfer_time_includes_flits_and_wire():
    link = Link(0, 1, flit_time=2, wire_latency=3)
    packet = Packet(0, 1, size_flits=4)
    arrival = link.transfer(packet, now=100)
    # 4 flits x 2us occupancy + 3us wire.
    assert arrival == 100 + 8 + 3


def test_back_to_back_packets_queue():
    link = Link(0, 1, flit_time=2, wire_latency=0)
    first = Packet(0, 1, size_flits=5)
    second = Packet(0, 1, size_flits=5)
    a1 = link.transfer(first, now=0)
    a2 = link.transfer(second, now=0)
    assert a1 == 10
    assert a2 == 20  # waited for the channel


def test_queue_delay_reflects_busy_channel():
    link = Link(0, 1, flit_time=1, wire_latency=0)
    link.transfer(Packet(0, 1, size_flits=10), now=0)
    assert link.queue_delay(4) == 6
    assert link.queue_delay(10) == 0


def test_idle_gap_does_not_queue():
    link = Link(0, 1, flit_time=1, wire_latency=0)
    link.transfer(Packet(0, 1, size_flits=2), now=0)
    arrival = link.transfer(Packet(0, 1, size_flits=2), now=100)
    assert arrival == 102


def test_statistics():
    link = Link(0, 1, flit_time=1, wire_latency=0)
    link.transfer(Packet(0, 1, size_flits=3), now=0)
    link.transfer(Packet(0, 1, size_flits=3), now=0)
    assert link.packets_carried == 2
    assert link.flits_carried == 6
    assert link.total_wait == 3  # second packet waited 3us


def test_disabled_link_rejects_transfer():
    link = Link(0, 1)
    link.enabled = False
    with pytest.raises(RuntimeError):
        link.transfer(Packet(0, 1), now=0)


def test_negative_timing_rejected():
    with pytest.raises(ValueError):
        Link(0, 1, flit_time=-1)


def test_utilisation_bounded():
    link = Link(0, 1, flit_time=1, wire_latency=0)
    for _ in range(5):
        link.transfer(Packet(0, 1, size_flits=2), now=0)
    assert 0.0 <= link.utilisation(100) <= 1.0
    assert link.utilisation(0) == 0.0
