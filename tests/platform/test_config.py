"""Tests for the platform configuration."""

import pytest

from repro.platform.config import PlatformConfig


def test_centurion_defaults():
    config = PlatformConfig()
    assert config.width == 16
    assert config.height == 8
    assert config.num_nodes == 128
    # Paper-stated parameters.
    assert config.generation_period_us == 4_000
    assert config.ffw_timeout_us == 20_000
    assert config.fault_time_us == 500_000
    assert config.horizon_us == 1_000_000


def test_replace_creates_modified_copy():
    config = PlatformConfig()
    smaller = config.replace(width=4, height=4)
    assert smaller.num_nodes == 16
    assert config.num_nodes == 128


def test_frozen():
    config = PlatformConfig()
    with pytest.raises(Exception):
        config.width = 99


def test_small_preset():
    config = PlatformConfig.small()
    assert config.num_nodes == 16
    assert config.horizon_us == 200_000


def test_small_preset_accepts_overrides():
    config = PlatformConfig.small(horizon_us=50_000)
    assert config.horizon_us == 50_000


def test_invalid_mapping_rejected():
    with pytest.raises(ValueError):
        PlatformConfig(initial_mapping="alphabetical")


def test_fault_beyond_horizon_rejected():
    with pytest.raises(ValueError):
        PlatformConfig(fault_time_us=2_000_000, horizon_us=1_000_000)


def test_non_positive_timing_rejected():
    with pytest.raises(ValueError):
        PlatformConfig(generation_period_us=0)


def test_tiny_grid_rejected():
    with pytest.raises(ValueError):
        PlatformConfig(width=1, height=1)


def test_model_params_for_ni():
    config = PlatformConfig(ni_threshold=30)
    assert config.model_params("ni") == {"threshold": 30}
    assert config.model_params("network_interaction") == {"threshold": 30}


def test_model_params_for_ffw():
    config = PlatformConfig()
    params = config.model_params("ffw")
    assert params["timeout_us"] == 20_000


def test_model_params_for_baseline_empty():
    assert PlatformConfig().model_params("none") == {}
