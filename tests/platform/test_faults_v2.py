"""Behavioural tests for the v2 fault kinds.

Fault taxonomy v2 adds partial failure modes on top of PR 3's binary
outages: degraded links (slower, not dead), corrupting links (delivered,
not usable), controller attach-point failures (dark, not gone) and
hazard-rate storms (drawn, not scheduled).  These tests pin each kind's
mechanics on a small platform; the determinism pins live in
``tests/integration/test_fault_v2_determinism.py``.
"""

import pytest

from repro.noc.topology import normalize_edge
from repro.platform.centurion import CenturionPlatform
from repro.platform.config import PlatformConfig
from repro.platform.controller import ControllerDetachedError
from repro.platform.faults import HAZARD_STREAM
from repro.platform.scenario import FaultEvent, FaultScenario
from repro.sim.engine import Simulator

CONFIG = PlatformConfig.small(horizon_us=100_000, fault_time_us=50_000)


def small_platform(seed=5, model="none"):
    return CenturionPlatform(CONFIG, model_name=model, seed=seed)


def first_edge(platform):
    return sorted(
        normalize_edge(a, b) for a, b in platform.network.links
    )[0]


# -- degraded links ---------------------------------------------------------


class TestLinkDegrade:
    def test_degrade_stretches_both_directions_and_recovers(self):
        platform = small_platform()
        a, b = first_edge(platform)
        scenario = FaultScenario(
            name="slow-edge",
            events=(
                {"at_us": 10_000, "kind": "link_degrade",
                 "victims": [[a, b]], "factor": 5, "duration_us": 20_000},
            ),
        )
        platform.inject_scenario(scenario)
        fwd = platform.network.link(a, b)
        rev = platform.network.link(b, a)
        nominal = fwd.flit_time
        seen = {}
        sim = platform.sim
        sim.schedule_at(
            15_000, lambda: seen.update(during=(fwd.flit_time, rev.flit_time))
        )
        platform.run()
        assert seen["during"] == (nominal * 5, nominal * 5)
        assert fwd.flit_time == nominal and rev.flit_time == nominal
        assert not fwd.degraded
        assert platform.faults.degraded_victims == [(a, b)]
        assert (10_000, "link_degrade", (a, b)) not in platform.faults.recovered
        assert (30_000, "link_degrade", (a, b)) in platform.faults.recovered
        assert platform.trace.count("link_degraded") == 1
        assert platform.trace.count("link_degrade_recovered") == 1

    def test_degraded_edge_stays_routable(self):
        platform = small_platform(model="none")
        a, b = first_edge(platform)
        platform.inject_scenario(
            {"name": "slow", "events": [
                {"at_us": 0, "kind": "link_degrade", "victims": [[a, b]],
                 "factor": 16},
            ]}
        )
        series = platform.run()
        # Traffic still flows: a degraded mesh delivers packets (an
        # outage of the same edge would instead force detours/drops).
        assert platform.network.stats["delivered"] > 0
        assert len(series) > 0
        assert platform.network.link_degraded(a, b)

    def test_permanent_degrade_outlives_transient_overlap(self):
        platform = small_platform()
        a, b = first_edge(platform)
        platform.inject_scenario(
            {"name": "overlap", "events": [
                {"at_us": 10_000, "kind": "link_degrade",
                 "victims": [[a, b]], "factor": 2, "duration_us": 20_000},
                {"at_us": 15_000, "kind": "link_degrade",
                 "victims": [[a, b]], "factor": 4},
            ]}
        )
        platform.run()
        # The permanent declaration claimed the edge: the transient's
        # recovery at 30ms must not restore the timing.
        assert platform.network.link_degraded(a, b)
        assert platform.network.link(a, b).flit_time == 4 * CONFIG.flit_time_us

    def test_transient_over_permanent_reverts_to_permanent_factor(self):
        platform = small_platform()
        a, b = first_edge(platform)
        platform.inject_scenario(
            {"name": "worst-wins", "events": [
                {"at_us": 1_000, "kind": "link_degrade",
                 "victims": [[a, b]], "factor": 2},
                {"at_us": 2_000, "kind": "link_degrade",
                 "victims": [[a, b]], "factor": 8, "duration_us": 1_000},
            ]}
        )
        seen = {}
        link = platform.network.link(a, b)
        nominal = CONFIG.flit_time_us
        platform.sim.schedule_at(
            2_500, lambda: seen.update(during=link.flit_time)
        )
        platform.run()
        # During the overlap the worst active claim (8) governs; when
        # the transient lapses the edge must *revert to the permanent
        # claim's factor 2*, not stay at 8 forever.
        assert seen["during"] == 8 * nominal
        assert link.flit_time == 2 * nominal
        assert platform.network.degraded_links == {(a, b): 2}

    def test_nested_transients_revert_to_outer_factor_then_restore(self):
        platform = small_platform()
        a, b = first_edge(platform)
        platform.inject_scenario(
            {"name": "nested", "events": [
                {"at_us": 1_000, "kind": "link_degrade",
                 "victims": [[a, b]], "factor": 2, "duration_us": 40_000},
                {"at_us": 5_000, "kind": "link_degrade",
                 "victims": [[a, b]], "factor": 8, "duration_us": 5_000},
            ]}
        )
        seen = {}
        link = platform.network.link(a, b)
        nominal = CONFIG.flit_time_us
        platform.sim.schedule_at(
            7_000, lambda: seen.update(inner=link.flit_time)
        )
        platform.sim.schedule_at(
            20_000, lambda: seen.update(outer=link.flit_time)
        )
        platform.run()
        assert seen == {"inner": 8 * nominal, "outer": 2 * nominal}
        assert link.flit_time == nominal
        assert not platform.network.degraded_links
        assert (41_000, "link_degrade", (a, b)) in platform.faults.recovered

    def test_degrade_rejects_bad_factor(self):
        with pytest.raises(ValueError):
            FaultEvent(at_us=0, kind="link_degrade", count=1, factor=1)
        with pytest.raises(ValueError):
            FaultEvent(at_us=0, kind="link_degrade", count=1)
        with pytest.raises(ValueError):
            FaultEvent(at_us=0, kind="node", count=1, factor=2)


# -- corrupting links -------------------------------------------------------


class TestCorrupt:
    def test_corrupted_deliveries_counted_not_executed(self):
        platform = small_platform(seed=11, model="none")
        scenario = FaultScenario(
            name="garble", events=(
                {"at_us": 20_000, "kind": "corrupt", "count": 6,
                 "duration_us": 40_000},
            ),
        )
        platform.inject_scenario(scenario)
        series = platform.run()
        stats = platform.network.stats
        corrupted = stats.get("delivered_corrupted", 0)
        assert corrupted > 0
        # Corrupted packets are *delivered* (NoC-level success) ...
        assert stats["delivered"] >= corrupted
        # ... surfaced in the metrics series and the trace ...
        assert sum(series.corrupted_deliveries) == corrupted
        assert platform.trace.count("packet_corrupted") == corrupted
        assert "corrupted_deliveries" in series.as_dict()
        # ... and the edges recovered at the window end.
        assert not platform.network.corrupting_links
        assert platform.faults.corrupted_victims
        routers = platform.network.routers.values()
        assert sum(r.corrupted_sunk for r in routers) == corrupted

    def test_clean_run_reports_no_corruption_surface(self):
        platform = small_platform(seed=11, model="none")
        platform.inject_faults(2)
        series = platform.run()
        # Corruption-free runs keep the v1 surface exactly: no stats
        # key, no exported series column, no trace category.
        assert "delivered_corrupted" not in platform.network.stats
        assert "corrupted_deliveries" not in series.as_dict()
        assert platform.trace.count("packet_corrupted") == 0

    def test_corrupting_flag_clears_with_recovery(self):
        platform = small_platform()
        a, b = first_edge(platform)
        platform.inject_scenario(
            {"name": "c", "events": [
                {"at_us": 1_000, "kind": "corrupt", "victims": [[a, b]],
                 "duration_us": 2_000},
            ]}
        )
        flags = {}
        platform.sim.schedule_at(
            2_000,
            lambda: flags.update(during=platform.network.link_corrupting(a, b)),
        )
        platform.run()
        assert flags["during"] is True
        assert platform.network.link_corrupting(a, b) is False
        assert platform.trace.count("link_corrupting") == 1
        assert platform.trace.count("link_corrupt_recovered") == 1


# -- controller attach-point failures --------------------------------------


class TestControllerFaults:
    def test_sever_darkens_covered_nodes_until_recovery(self):
        platform = small_platform()
        controller = platform.controller
        victim = 1
        dark_nodes = [
            n for n in platform.network.topology.node_ids()
            if controller.attach_index_of(n) == victim
        ]
        assert dark_nodes  # every attach point covers someone
        platform.inject_scenario(
            {"name": "sever", "events": [
                {"at_us": 10_000, "kind": "controller", "victims": [victim],
                 "duration_us": 20_000},
            ]}
        )
        probes = {}

        def probe(tag):
            try:
                controller.debug_read(dark_nodes[0])
                probes[tag] = "light"
            except ControllerDetachedError:
                probes[tag] = "dark"

        platform.sim.schedule_at(15_000, lambda: probe("during"))
        platform.sim.schedule_at(35_000, lambda: probe("after"))
        platform.run()
        assert probes == {"during": "dark", "after": "light"}
        assert platform.faults.controller_victims == [victim]
        assert (30_000, "controller", victim) in platform.faults.recovered
        assert platform.trace.count("controller_severed") == 1
        assert platform.trace.count("controller_restored") == 1

    def test_dark_knobs_raise_and_broadcast_skips(self):
        platform = small_platform()
        controller = platform.controller
        controller.sever_attach(0)
        dark = next(
            n for n in platform.network.topology.node_ids()
            if controller.is_dark(n)
        )
        light = next(
            n for n in platform.network.topology.node_ids()
            if not controller.is_dark(n)
        )
        with pytest.raises(ControllerDetachedError):
            controller.debug_set_task(dark, 1)
        with pytest.raises(ControllerDetachedError):
            controller.rcap_write(dark, {"routing_mode": "adaptive"})
        with pytest.raises(ControllerDetachedError):
            controller.upload_model_params({}, node_ids=[dark])
        # Broadcast skips dark nodes silently and reports the rest.
        written = controller.upload_model_params({})
        assert dark not in written and light in written
        assert controller.dark_skips >= 2
        controller.restore_attach(0)
        assert controller.debug_read(dark)["node"] == dark

    def test_inject_packet_fails_over_and_full_detach_raises(self):
        platform = small_platform()
        controller = platform.controller
        from repro.noc.packet import Packet

        controller.sever_attach(0)
        assert controller.inject_packet(
            Packet(src_node=0, dest_task=2), attach_index=0
        ) in (True, False)  # failed over to a healthy attach point
        for index in controller.healthy_attach_indices():
            controller.sever_attach(index)
        with pytest.raises(ControllerDetachedError):
            controller.inject_packet(Packet(src_node=0, dest_task=2))

    def test_sever_rejects_bad_index(self):
        platform = small_platform()
        with pytest.raises(ValueError):
            platform.controller.sever_attach(99)
        with pytest.raises(ValueError):
            platform.inject_scenario(
                {"name": "bad", "events": [
                    {"at_us": 0, "kind": "controller", "victims": [99]},
                ]}
            )


# -- hazard-rate storms -----------------------------------------------------


class TestHazardStorms:
    def test_storm_times_come_from_dedicated_stream(self):
        event = FaultEvent(
            at_us=10_000, count=1, hazard_per_us=0.0005, horizon_us=80_000,
            duration_us=5_000,
        )
        rng_a = Simulator(seed=9).rng.stream(HAZARD_STREAM)
        rng_b = Simulator(seed=9).rng.stream(HAZARD_STREAM)
        times = event.occurrence_times(rng_a)
        assert times == event.occurrence_times(rng_b)
        assert times == sorted(times)
        assert all(10_000 < t <= 80_000 for t in times)
        assert times  # rate*window = 35 expected occurrences

    def test_storm_requires_rng(self):
        event = FaultEvent(
            at_us=0, count=1, hazard_per_us=0.001, horizon_us=10_000
        )
        with pytest.raises(ValueError):
            event.occurrence_times()

    def test_storm_composes_with_kind_and_duration(self):
        platform = small_platform(seed=13)
        platform.inject_scenario(
            {"name": "storm", "events": [
                {"at_us": 5_000, "kind": "link", "count": 1,
                 "hazard_per_us": 0.0002, "horizon_us": 80_000,
                 "duration_us": 4_000},
            ]}
        )
        platform.run()
        faults = platform.faults
        assert faults.link_victims  # occurrences struck
        # Transient composition: the struck edges recovered again.
        assert any(kind == "link" for _t, kind, _v in faults.recovered)
        assert not platform.network.failed_links

    def test_storm_validation(self):
        with pytest.raises(ValueError):
            FaultEvent(at_us=0, count=1, hazard_per_us=0)
        with pytest.raises(ValueError):
            FaultEvent(at_us=0, count=1, hazard_per_us=0.1)
        with pytest.raises(ValueError):
            FaultEvent(at_us=5_000, count=1, hazard_per_us=0.1,
                       horizon_us=5_000)
        with pytest.raises(ValueError):
            FaultEvent(at_us=0, count=1, hazard_per_us=0.1,
                       horizon_us=10_000, repeats=3, period_us=100)
        with pytest.raises(ValueError):
            FaultEvent(at_us=0, count=1, horizon_us=10_000)
