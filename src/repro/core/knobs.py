"""Knobs — the actuating half of the Figure 2a surface.

"The intelligence module can also affect several aspects of the router and
processor, referred to as 'knobs'": task select, clock enable, reset and
node-level frequency scaling.  Each knob wraps the underlying action with
uniform ``set()`` semantics and an actuation counter, so experiments can
report how often each model pulled each lever.
"""


class Knob:
    """Base knob: counts actuations, delegates to ``_apply``."""

    def __init__(self, name):
        self.name = name
        self.actuations = 0

    def set(self, *args, **kwargs):
        """Actuate the knob (counted); returns the applied state."""
        self.actuations += 1
        return self._apply(*args, **kwargs)

    def _apply(self, *args, **kwargs):
        raise NotImplementedError

    def __repr__(self):
        return "{}(actuations={})".format(type(self).__name__, self.actuations)


class TaskSelectKnob(Knob):
    """"The task the processor node should be running"."""

    def __init__(self, pe, reason="aim"):
        super().__init__("task_select")
        self._pe = pe
        self.reason = reason

    def _apply(self, task_id):
        self._pe.set_task(task_id, reason=self.reason)
        return self._pe.task_id


class ClockEnableKnob(Knob):
    """"Clock Enable for the processor node"."""

    def __init__(self, pe):
        super().__init__("clock_enable")
        self._pe = pe

    def _apply(self, enabled):
        self._pe.set_clock_enabled(enabled)
        return self._pe.clock_enabled


class ResetKnob(Knob):
    """"Reset of the processor node"."""

    def __init__(self, pe):
        super().__init__("reset")
        self._pe = pe

    def _apply(self):
        self._pe.reset()
        return True


class FrequencyKnob(Knob):
    """"Node-level frequency scaling (10MHz - 300MHz)"."""

    def __init__(self, pe):
        super().__init__("frequency")
        self._pe = pe

    def _apply(self, mhz):
        return self._pe.frequency.set_frequency(mhz)


class RouterConfigKnob(Knob):
    """RCAP writes to the local router's settings."""

    def __init__(self, router):
        super().__init__("router_config")
        self._router = router

    def _apply(self, settings):
        self._router.rcap_write(settings)
        return self._router.rcap_read()


class KnobBank:
    """All knobs of one node, keyed by name."""

    def __init__(self, knobs):
        self._knobs = dict(knobs)

    def __getitem__(self, name):
        return self._knobs[name]

    def __contains__(self, name):
        return name in self._knobs

    def names(self):
        """Sorted knob names."""
        return sorted(self._knobs)

    def actuation_counts(self):
        """Mapping knob name -> number of actuations."""
        return {name: knob.actuations for name, knob in self._knobs.items()}


class LazyKnobBank(KnobBank):
    """Knob bank that builds each knob object on first access.

    Platform construction instantiates one bank per node (128 × 5 knobs on
    the full Centurion) but most runs only ever pull ``task_select``, so
    the bank stores zero-argument factories and materialises lazily.
    Behaviour is indistinguishable from an eager bank: membership, names
    and actuation counts cover unbuilt knobs (at zero actuations).
    """

    def __init__(self, factories):
        super().__init__({})
        self._factories = dict(factories)

    def __getitem__(self, name):
        knob = self._knobs.get(name)
        if knob is None:
            knob = self._knobs[name] = self._factories[name]()
        return knob

    def __contains__(self, name):
        return name in self._factories

    def names(self):
        """Sorted knob names."""
        return sorted(self._factories)

    def actuation_counts(self):
        """Mapping knob name -> number of actuations."""
        return {name: self[name].actuations for name in self._factories}


def standard_knob_bank(pe, router, reason="aim"):
    """Build the full Figure 2a knob set for one node (lazily)."""
    return LazyKnobBank(
        {
            "task_select": lambda: TaskSelectKnob(pe, reason=reason),
            "clock_enable": lambda: ClockEnableKnob(pe),
            "reset": lambda: ResetKnob(pe),
            "frequency": lambda: FrequencyKnob(pe),
            "router_config": lambda: RouterConfigKnob(router),
        }
    )
