"""Benches for the paper's §V future-work extensions.

The discussion section predicts: "adaptive and multi-cast routing would
allow greater throughput as it exploits the inherent parallelism of a task
graph" and proposes adaptive thresholds.  These benches quantify all three
extensions against the evaluated system.
"""

from benchmarks.harness import runs_per_cell, seed_base
from repro.analysis.latency import LatencyCollector
from repro.experiments.runner import default_seeds, run_batch
from repro.experiments.stats import median
from repro.platform.centurion import CenturionPlatform
from repro.platform.config import PlatformConfig


def _runs():
    return max(3, runs_per_cell() // 3)


def _median_settled(model, config):
    seeds = default_seeds(_runs(), base=seed_base())
    results = run_batch(model, seeds, config=config, keep_series=False)
    return median([r.settled_performance for r in results])


def test_extension_multicast_fork(benchmark):
    """Multicast fork dispatch vs the paper's sequential branches."""

    def sweep():
        out = {}
        for multicast in (False, True):
            config = PlatformConfig(multicast_fork=multicast)
            platform = CenturionPlatform(config, model_name="none",
                                         seed=seed_base())
            collector = LatencyCollector().install(platform.network)
            platform.run()
            out[multicast] = {
                "joins": platform.workload.joins,
                "p50_latency_us": collector.overall.quantile(0.5),
            }
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("Fork dispatch (full Centurion, baseline routing, 1 s):")
    for multicast, data in results.items():
        print("  {:<12} joins={:<6} p50 latency={} us".format(
            "multicast" if multicast else "sequential",
            data["joins"], data["p50_latency_us"]))
    assert results[True]["joins"] > 0
    # Equal average demand: multicast must sustain comparable throughput.
    assert results[True]["joins"] >= results[False]["joins"] * 0.5


def test_extension_adaptive_port_routing(benchmark):
    """Congestion-aware output ports vs dimension-ordered XY.

    Link bandwidth is tightened (flit_time 12 us) so that output-port
    choice actually matters; the adaptive mode must not lose throughput
    and should reduce channel waiting.
    """

    def sweep():
        out = {}
        for mode in ("xy", "adaptive"):
            config = PlatformConfig(routing_mode=mode, flit_time_us=12)
            platform = CenturionPlatform(config, model_name="none",
                                         seed=seed_base())
            platform.run()
            total_wait = sum(
                link.total_wait for link in platform.network.links.values()
            )
            out[mode] = {
                "joins": platform.workload.joins,
                "total_link_wait_us": total_wait,
            }
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("Routing mode under tightened links (flit_time=12us):")
    for mode, data in results.items():
        print("  {:<9} joins={:<6} total link wait={} us".format(
            mode, data["joins"], data["total_link_wait_us"]))
    assert results["adaptive"]["joins"] > 0
    assert (
        results["adaptive"]["joins"] >= results["xy"]["joins"] * 0.8
    )


def test_extension_adaptive_thresholds(benchmark):
    """Adaptive-threshold NI vs the fixed-threshold NI of the paper."""

    def sweep():
        return {
            "network_interaction": _median_settled(
                "network_interaction", PlatformConfig()
            ),
            "adaptive_network_interaction": _median_settled(
                "adaptive_network_interaction", PlatformConfig()
            ),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("Median settled joins/window, fixed vs adaptive NI thresholds:")
    for model, value in results.items():
        print("  {:<30} {:6.2f}".format(model, value))
    assert all(v > 0 for v in results.values())
