"""Tests for streaming latency statistics."""

import pytest

from repro.analysis.latency import LatencyCollector, LatencyStats
from repro.platform.centurion import CenturionPlatform
from repro.platform.config import PlatformConfig


class TestLatencyStats:
    def test_mean_and_extremes(self):
        stats = LatencyStats()
        for value in (100, 200, 300):
            stats.add(value)
        assert stats.count == 3
        assert stats.mean == pytest.approx(200.0)
        assert stats.minimum == 100
        assert stats.maximum == 300

    def test_variance_welford(self):
        stats = LatencyStats()
        for value in (2, 4, 4, 4, 5, 5, 7, 9):
            stats.add(value)
        assert stats.variance == pytest.approx(4.571428, rel=1e-5)

    def test_variance_of_single_sample_is_zero(self):
        stats = LatencyStats()
        stats.add(5)
        assert stats.variance == 0.0

    def test_quantiles_from_histogram(self):
        stats = LatencyStats(bucket_us=10, num_buckets=100)
        for value in range(0, 1000, 10):  # uniform 0..990
            stats.add(value)
        p50 = stats.quantile(0.5)
        assert 400 <= p50 <= 600
        p95 = stats.quantile(0.95)
        assert 900 <= p95 <= 1000

    def test_quantile_empty_returns_none(self):
        assert LatencyStats().quantile(0.5) is None

    def test_overflow_bucket_caps_resolution(self):
        stats = LatencyStats(bucket_us=10, num_buckets=5)
        stats.add(10_000)
        assert stats.quantile(0.5) == 45.0  # last bucket midpoint

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            LatencyStats(bucket_us=0)
        stats = LatencyStats()
        with pytest.raises(ValueError):
            stats.add(-1)
        with pytest.raises(ValueError):
            stats.quantile(1.5)

    def test_summary_keys(self):
        stats = LatencyStats()
        stats.add(50)
        summary = stats.summary()
        assert set(summary) == {
            "count", "mean_us", "min_us", "max_us",
            "p50_us", "p95_us", "p99_us",
        }


class TestLatencyCollector:
    def test_collects_per_task_on_platform(self):
        platform = CenturionPlatform(
            PlatformConfig.small(), model_name="none", seed=31
        )
        collector = LatencyCollector().install(platform.network)
        platform.run(100_000)
        assert collector.overall.count > 0
        assert 2 in collector.by_task  # branch traffic always flows
        summary = collector.summary()
        assert summary["overall"]["count"] == collector.overall.count

    def test_delivery_still_reaches_pes(self):
        platform = CenturionPlatform(
            PlatformConfig.small(), model_name="none", seed=31
        )
        LatencyCollector().install(platform.network)
        platform.run(100_000)
        assert platform.workload.joins > 0

    def test_double_install_rejected(self):
        platform = CenturionPlatform(
            PlatformConfig.small(), model_name="none", seed=31
        )
        collector = LatencyCollector().install(platform.network)
        with pytest.raises(RuntimeError):
            collector.install(platform.network)

    def test_uninstall_restores_handler(self):
        platform = CenturionPlatform(
            PlatformConfig.small(), model_name="none", seed=31
        )
        original = platform.network.deliver_handler
        collector = LatencyCollector().install(platform.network)
        collector.uninstall()
        assert platform.network.deliver_handler is original
