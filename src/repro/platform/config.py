"""Platform configuration.

One frozen dataclass carries every tunable of the reproduction, grouped by
subsystem.  Defaults are the calibrated Centurion-V6 values: the paper's
explicit parameters (8×16 grid, 4 ms task-1 period, 20 ms FFW timeout,
500 ms fault injection, 1000 ms horizon) plus this reproduction's service
times and NoC timings (documented in DESIGN.md).
"""

import dataclasses

from repro.app.workloads.policies import MAPPING_POLICIES, RECOVERY_REMAPS
from repro.node.dvfs import MAX_FREQUENCY_MHZ, MIN_FREQUENCY_MHZ

#: DVFS governor policies (see :mod:`repro.platform.dynamics`):
#: ``"none"`` leaves frequencies alone, ``"threshold-throttle"`` throttles
#: above ``governor_hot_c`` and restores at or below it, ``"hysteresis"``
#: throttles above ``governor_hot_c`` but restores only at or below
#: ``governor_cool_c`` and never changes faster than ``governor_dwell_us``.
GOVERNORS = ("none", "threshold-throttle", "hysteresis")


@dataclasses.dataclass(frozen=True)
class PlatformConfig:
    """All platform parameters with Centurion-V6 defaults."""

    # -- grid ---------------------------------------------------------------
    width: int = 16
    height: int = 8

    # -- NoC timing ----------------------------------------------------------
    flit_time_us: int = 1
    wire_latency_us: int = 1
    router_latency_us: int = 2
    packet_flits: int = 4
    deadlock_wait_limit_us: int = 50_000
    max_reroutes: int = 32
    recent_queue_depth: int = 8
    #: "xy" (the paper's evaluated heuristic) or "adaptive" (§V extension:
    #: congestion-aware minimal output-port selection).
    routing_mode: str = "xy"
    #: Express hop engine: collapse multi-hop flights into single events
    #: when provably safe (see repro.noc.network).  Bit-identical results
    #: either way; the knob exists for A/B verification and debugging.
    fast_path: bool = True

    # -- processing elements ----------------------------------------------------
    queue_capacity: int = 6
    service_jitter: float = 0.1
    overflow_hold_us: int = 750

    # -- task graph (Figure 3, ratio 1:3:1) ---------------------------------------
    fork_width: int = 3
    generation_period_us: int = 4_000
    source_service_us: int = 500
    branch_service_us: int = 12_500
    sink_service_us: int = 3_000
    packet_deadline_us: int = 16_000
    #: Paper §V extension: emit all fork branches of an instance together
    #: (once per ``fork_width`` periods) and fan them to distinct providers.
    multicast_fork: bool = False

    # -- intelligence ----------------------------------------------------------------
    aim_tick_us: int = 2_000
    ni_threshold: int = 24
    ffw_timeout_us: int = 20_000
    ffw_deadline_margin_us: int = 8_000
    #: AIM timer-tick scheduling (canonical-optional, like ``fast_path``
    #: an A/B knob whose settings are pinned bit-identical): ``"event"``
    #: schedules wakeups only when a model's timer demands one (idle nodes
    #: schedule nothing), ``"ticked"`` polls every node every period.  See
    #: :mod:`repro.core.aim`.
    timer_mode: str = "event"

    # -- experiment harness -------------------------------------------------------------
    initial_mapping: str = "random"
    metrics_window_us: int = 10_000
    horizon_us: int = 1_000_000
    fault_time_us: int = 500_000

    # -- self-healing dynamics (see repro.platform.dynamics) ----------------
    # These fields are canonical-optional: `canonical()` omits them at
    # their defaults, so every campaign key minted before they existed is
    # conserved byte-for-byte.
    dvfs_governor: str = "none"
    governor_hot_c: float = 70.0
    governor_cool_c: float = 60.0
    governor_throttle_mhz: int = 50
    governor_dwell_us: int = 10_000
    watchdog_recovery: bool = False
    watchdog_timeout_us: int = 100_000
    #: Fault-aware remap on recovery (canonical-optional, like the
    #: dynamics group): ``"fault-aware"`` assigns a recovered blank node
    #: the task with the largest census deficit against its
    #: weight-proportional target (see repro.app.workloads.policies).
    recovery_remap: str = "none"

    def __post_init__(self):
        if self.width < 2 or self.height < 1:
            raise ValueError("grid must be at least 2x1")
        if self.initial_mapping not in MAPPING_POLICIES:
            raise ValueError(
                "unknown initial mapping {!r}; known: {}".format(
                    self.initial_mapping,
                    ", ".join(sorted(MAPPING_POLICIES)),
                )
            )
        if self.recovery_remap not in RECOVERY_REMAPS:
            raise ValueError(
                "unknown recovery remap {!r}; known: {}".format(
                    self.recovery_remap, RECOVERY_REMAPS
                )
            )
        if self.routing_mode not in ("xy", "adaptive"):
            raise ValueError(
                "unknown routing mode {!r}".format(self.routing_mode)
            )
        if self.timer_mode not in ("ticked", "event"):
            raise ValueError(
                "unknown timer mode {!r}".format(self.timer_mode)
            )
        if self.fault_time_us > self.horizon_us:
            raise ValueError("fault time beyond horizon")
        if self.dvfs_governor not in GOVERNORS:
            raise ValueError(
                "unknown DVFS governor {!r}; known: {}".format(
                    self.dvfs_governor, GOVERNORS
                )
            )
        if not self.governor_cool_c < self.governor_hot_c:
            raise ValueError(
                "governor_cool_c must lie below governor_hot_c"
            )
        if not (
            MIN_FREQUENCY_MHZ
            <= self.governor_throttle_mhz
            <= MAX_FREQUENCY_MHZ
        ):
            raise ValueError(
                "governor_throttle_mhz {} outside [{}, {}]".format(
                    self.governor_throttle_mhz,
                    MIN_FREQUENCY_MHZ,
                    MAX_FREQUENCY_MHZ,
                )
            )
        if self.governor_dwell_us < 0:
            raise ValueError("governor_dwell_us must be >= 0")
        for field in (
            "flit_time_us",
            "generation_period_us",
            "aim_tick_us",
            "ffw_timeout_us",
            "metrics_window_us",
            "horizon_us",
            "watchdog_timeout_us",
        ):
            if getattr(self, field) <= 0:
                raise ValueError("{} must be positive".format(field))

    @property
    def num_nodes(self):
        return self.width * self.height

    def replace(self, **changes):
        """A copy with the given fields changed."""
        return dataclasses.replace(self, **changes)

    #: Fields added after the v1 config schema (the self-healing dynamics
    #: group).  ``canonical()`` emits them only when they deviate from
    #: their defaults, so a dynamics-free config canonicalises — and
    #: content-hashes — to the byte-identical payload it always had.
    _CANONICAL_OPTIONAL = frozenset((
        "dvfs_governor",
        "governor_hot_c",
        "governor_cool_c",
        "governor_throttle_mhz",
        "governor_dwell_us",
        "watchdog_recovery",
        "watchdog_timeout_us",
        "recovery_remap",
        "timer_mode",
    ))

    def canonical(self):
        """Config dict for content hashing (campaign cell keys).

        Every v1 field appears whether defaulted or not; post-v1 fields
        (see :attr:`_CANONICAL_OPTIONAL`) join only when changed from
        their default, keeping pre-existing campaign keys stable.
        """
        data = dataclasses.asdict(self)
        for name in self._CANONICAL_OPTIONAL:
            if data[name] == _FIELD_DEFAULTS[name]:
                del data[name]
        return data

    @classmethod
    def small(cls, **changes):
        """A fast 4×4 configuration for tests and examples."""
        base = dict(
            width=4,
            height=4,
            horizon_us=200_000,
            fault_time_us=100_000,
        )
        base.update(changes)
        if (
            "fault_time_us" not in changes
            and base["fault_time_us"] > base["horizon_us"]
        ):
            base["fault_time_us"] = base["horizon_us"] // 2
        return cls(**base)

    def model_params(self, model_name):
        """Constructor parameters for a named intelligence model."""
        if model_name in ("network_interaction", "ni"):
            return {"threshold": self.ni_threshold}
        if model_name in ("foraging_for_work", "ffw"):
            return {
                "timeout_us": self.ffw_timeout_us,
                "deadline_margin_us": self.ffw_deadline_margin_us,
            }
        return {}


#: Field-name -> declared default, used by ``canonical()`` to decide
#: which canonical-optional fields are at rest.
_FIELD_DEFAULTS = {
    field.name: field.default
    for field in dataclasses.fields(PlatformConfig)
}
