"""Settling- and recovery-time detection.

The paper reports "settling time" (from the random initial mapping to a
steady task topology) and "recovery time" (from fault injection to the new
steady state) but does not give its detector.  We use the standard
control-systems definition: the settling time is the first instant after
which the response stays within a tolerance band around its final value.

Concretely, for a window-sampled metric over ``[start, end)``:

1. smooth with a short moving average (the per-window node counts are
   integer-noisy);
2. take the *final value* as the mean of the last quarter of the interval;
3. the settled index is the earliest sample from which every later sample
   stays within ``max(band_frac × final, band_floor)`` of the final value;
4. settling time = that sample's time − ``start``, and the settled
   performance is the mean of the metric from the settled index to ``end``.
"""


def moving_average(values, window=3):
    """Centered moving average with edge shrinking; window must be odd."""
    if window < 1 or window % 2 == 0:
        raise ValueError("window must be a positive odd number")
    if window == 1 or len(values) <= 2:
        return list(values)
    half = window // 2
    smoothed = []
    for i in range(len(values)):
        lo = max(0, i - half)
        hi = min(len(values), i + half + 1)
        segment = values[lo:hi]
        smoothed.append(sum(segment) / len(segment))
    return smoothed


def steady_state_time(times_ms, values, start_ms=0.0, end_ms=None,
                      band_frac=0.10, band_floor=2.0, smooth_window=5):
    """Detect the steady state of a sampled metric.

    Returns ``(settling_time_ms, settled_mean)``.  If the series never
    enters the band, the settling time is the full interval length (the
    run did not settle) and the settled mean falls back to the final value.
    """
    if len(times_ms) != len(values):
        raise ValueError("times and values length mismatch")
    indices = [
        i
        for i, t in enumerate(times_ms)
        if t >= start_ms and (end_ms is None or t < end_ms)
    ]
    if len(indices) < 2:
        raise ValueError("not enough samples in [{} , {})".format(
            start_ms, end_ms))
    segment_times = [times_ms[i] for i in indices]
    segment_values = moving_average(
        [values[i] for i in indices], smooth_window
    )
    tail_start = max(1, int(len(segment_values) * 0.75))
    tail = segment_values[tail_start:]
    final = sum(tail) / len(tail)
    band = max(abs(final) * band_frac, band_floor)
    settled_index = None
    # Walk backwards: find the earliest index from which everything stays
    # within the band.
    for i in range(len(segment_values) - 1, -1, -1):
        if abs(segment_values[i] - final) <= band:
            settled_index = i
        else:
            break
    if settled_index is None:
        interval = segment_times[-1] - segment_times[0]
        return interval, final
    settling_time = segment_times[settled_index] - start_ms
    settled_slice = segment_values[settled_index:]
    settled_mean = sum(settled_slice) / len(settled_slice)
    return settling_time, settled_mean


def settling_analysis(series, metric="active_nodes", end_ms=None, **kwargs):
    """Settling time/performance of a run from its start (Table I).

    ``series`` is a :class:`repro.app.metrics.MetricsSeries`.
    """
    return steady_state_time(
        series.time_ms,
        getattr(series, metric),
        start_ms=0.0,
        end_ms=end_ms,
        **kwargs
    )


def recovery_analysis(series, fault_time_ms, metric="active_nodes",
                      end_ms=None, **kwargs):
    """Recovery time/performance after fault injection (Table II)."""
    return steady_state_time(
        series.time_ms,
        getattr(series, metric),
        start_ms=fault_time_ms,
        end_ms=end_ms,
        **kwargs
    )
