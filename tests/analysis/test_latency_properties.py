"""Property tests for the streaming latency statistics."""

from hypothesis import given, strategies as st

from repro.analysis.latency import LatencyStats

samples = st.lists(
    st.integers(min_value=0, max_value=200_000), min_size=1, max_size=200
)


@given(samples)
def test_mean_within_extremes(values):
    stats = LatencyStats()
    for value in values:
        stats.add(value)
    assert stats.minimum <= stats.mean <= stats.maximum
    assert stats.count == len(values)


@given(samples)
def test_quantiles_monotone(values):
    stats = LatencyStats(bucket_us=100, num_buckets=2_100)
    for value in values:
        stats.add(value)
    quantiles = [stats.quantile(f) for f in (0.1, 0.5, 0.9, 1.0)]
    assert quantiles == sorted(quantiles)


@given(samples)
def test_quantile_brackets_true_median(values):
    """Histogram p50 must land within one bucket of the exact median."""
    bucket = 100
    stats = LatencyStats(bucket_us=bucket, num_buckets=2_100)
    for value in values:
        stats.add(value)
    ordered = sorted(values)
    exact = ordered[(len(ordered) - 1) // 2]
    approx = stats.quantile(0.5)
    assert abs(approx - exact) <= bucket


@given(samples)
def test_variance_non_negative(values):
    stats = LatencyStats()
    for value in values:
        stats.add(value)
    assert stats.variance >= 0.0
