"""Centurion platform assembly.

Builds the full system of Figure 2a for every node — router, processing
element, Artificial Intelligence Module — on top of one simulator, wires
the fork-join workload and the metrics sampler, applies the initial
mapping, and exposes ``run()``.  This is the main entry point of the
library:

>>> from repro.platform import CenturionPlatform, PlatformConfig
>>> platform = CenturionPlatform(
...     PlatformConfig.small(), model_name="foraging_for_work", seed=7)
>>> platform.run()  # doctest: +SKIP
"""

from repro.app.metrics import MetricsSampler
from repro.app.taskgraph import fork_join_graph
from repro.app.workload import ForkJoinWorkload
from repro.app.workloads import (
    GraphWorkload,
    apply_mapping,
    compile_workload,
)
from repro.core.aim import AimTickBank, ArtificialIntelligenceModule
from repro.core.models.registry import create_model, resolve_model_name
from repro.node.processor import ProcessingElement
from repro.noc.network import Network
from repro.noc.router import RouterConfig
from repro.noc.topology import MeshTopology
from repro.platform.config import PlatformConfig
from repro.platform.controller import ExperimentController
from repro.platform.dynamics import DynamicsController
from repro.platform.faults import FaultInjector
from repro.sim.engine import Simulator
from repro.sim.trace import TraceRecorder

#: Trace categories recorded by default (cheap, needed by experiments).
#: The per-packet ``packet_corrupted`` category is included because it
#: only fires while a corruption fault is active — corruption-free runs
#: record nothing extra.
DEFAULT_TRACE_CATEGORIES = (
    "task_switch",
    "node_failed",
    "node_recovered",
    "link_failed",
    "link_recovered",
    "link_degraded",
    "link_degrade_recovered",
    "link_corrupting",
    "link_corrupt_recovered",
    "packet_corrupted",
    "controller_severed",
    "controller_restored",
    # Self-healing dynamics: these only fire under an active governor,
    # watchdog recovery or deadlock pressure — dynamics-free runs record
    # nothing extra.
    "node_throttled",
    "node_restored",
    "watchdog_recovery",
    "deadlock_pressured",
    "deadlock_pressure_recovered",
)


class CenturionPlatform:
    """A complete simulated Centurion many-core system.

    Parameters
    ----------
    config:
        :class:`~repro.platform.config.PlatformConfig`; defaults to the
        full 128-node Centurion-V6.
    model_name:
        Intelligence scheme for every AIM: ``"none"``,
        ``"network_interaction"`` / ``"ni"``, ``"foraging_for_work"`` /
        ``"ffw"``, or any extension model in the registry.
    seed:
        Master seed; determines mapping, fault victims, jitter — the whole
        run.
    model_params:
        Optional overrides merged over ``config.model_params``.
    trace_categories:
        Which trace categories to record (``None`` = all, ``()`` = none).
    workload:
        Optional declarative workload — a
        :class:`~repro.app.workloads.WorkloadSpec` (or anything its
        :func:`~repro.app.workloads.load_workload` accepts: dict,
        built-in name, JSON file path). When absent the platform builds
        the legacy Figure 3 fork-join application from the config's
        task-graph fields, byte-identical to every pre-workload run.
        The spec's ``packet_flits``/``multicast`` override the config's.
    """

    def __init__(self, config=None, model_name="none", seed=0,
                 model_params=None, trace_categories=DEFAULT_TRACE_CATEGORIES,
                 workload=None):
        self.config = config if config is not None else PlatformConfig()
        self.model_name = resolve_model_name(model_name)
        self.seed = seed
        self.sim = Simulator(seed=seed)
        self.trace = TraceRecorder(trace_categories)
        topology = MeshTopology(self.config.width, self.config.height)
        self.network = Network(
            self.sim,
            topology=topology,
            flit_time=self.config.flit_time_us,
            wire_latency=self.config.wire_latency_us,
            router_config=RouterConfig(
                routing_mode=self.config.routing_mode,
                router_latency=self.config.router_latency_us,
                recent_queue_depth=self.config.recent_queue_depth,
            ),
            deadlock_wait_limit=self.config.deadlock_wait_limit_us,
            max_reroutes=self.config.max_reroutes,
            fast_path=self.config.fast_path,
            trace=self.trace,
        )
        if workload is None:
            self.workload_spec = None
            self.graph = fork_join_graph(
                fork_width=self.config.fork_width,
                generation_period_us=self.config.generation_period_us,
                source_service_us=self.config.source_service_us,
                branch_service_us=self.config.branch_service_us,
                sink_service_us=self.config.sink_service_us,
                deadline_us=self.config.packet_deadline_us,
            )
            self.workload = ForkJoinWorkload(
                self.sim,
                self.graph,
                packet_flits=self.config.packet_flits,
                multicast=self.config.multicast_fork,
            )
        else:
            compiled = compile_workload(workload)
            self.workload_spec = compiled.spec
            self.graph = compiled.graph
            self.workload = GraphWorkload(self.sim, compiled)
        self.pes = {}
        self.aims = {}
        # All AIMs tick in lockstep, so they share one periodic event
        # (AimTickBank) instead of one event per node per period; in
        # event timer mode the bank schedules wakeups only on demand.
        self._aim_ticker = AimTickBank(
            self.sim,
            self.config.aim_tick_us,
            timer_mode=self.config.timer_mode,
        )
        for node_id in topology.node_ids():
            pe = ProcessingElement(
                self.sim,
                node_id,
                self.network,
                app=self.workload,
                queue_capacity=self.config.queue_capacity,
                service_jitter=self.config.service_jitter,
                overflow_hold_us=self.config.overflow_hold_us,
                trace=self.trace,
                watchdog_timeout_us=self.config.watchdog_timeout_us,
            )
            self.pes[node_id] = pe
            self.aims[node_id] = ArtificialIntelligenceModule(
                self.sim,
                pe,
                self.network.router(node_id),
                self.network,
                model=self._build_model(model_params),
                tick_period_us=self.config.aim_tick_us,
                tick_bank=self._aim_ticker,
            )
        # Bind delivery straight to the PE table (one frame per delivery).
        pes = self.pes
        self.network.set_deliver_handler(
            lambda packet, node_id: pes[node_id].receive(packet)
        )
        self._apply_initial_mapping()
        # After the mapping so governor observers slot in behind each
        # node's AIM in a deterministic order; before the sampler so the
        # metrics layer can watch the dynamics counters.
        self.dynamics = DynamicsController(self)
        self.sampler = MetricsSampler(
            self.sim,
            self.pes.values(),
            self.network.directory,
            self.workload,
            window_us=self.config.metrics_window_us,
            network=self.network,
            dynamics=self.dynamics,
        ).start()
        self.controller = ExperimentController(self)
        self.faults = FaultInjector(self)

    # -- construction helpers ---------------------------------------------------

    def _build_model(self, overrides):
        if self.model_name == "none":
            # The baseline still gets a (cheap, inert) model so that every
            # node has a live AIM, as on the real platform.
            params = {}
        else:
            params = dict(self.config.model_params(self.model_name))
        if overrides:
            params.update(overrides)
        return create_model(
            self.model_name, self.graph.task_ids(), **params
        )

    def _apply_initial_mapping(self):
        rng = self.sim.rng.stream("initial-mapping")
        weights = self.graph.weights()
        topology = self.network.topology
        mapping = apply_mapping(
            self.config.initial_mapping, topology, weights, rng,
            workload=self.workload,
        )
        for node_id, task_id in mapping.items():
            self.pes[node_id].set_task(task_id, reason="init")
        self.initial_mapping = mapping

    def _deliver(self, packet, node_id):
        self.pes[node_id].receive(packet)

    # -- running -------------------------------------------------------------------

    def run(self, horizon_us=None):
        """Run the simulation to the horizon; returns the metrics series."""
        horizon = (
            self.config.horizon_us if horizon_us is None else horizon_us
        )
        self.sim.run_until(horizon)
        return self.sampler.series

    def inject_faults(self, count, at_us=None, victims=None):
        """Schedule a fault campaign (defaults to the config's 500 ms)."""
        at = self.config.fault_time_us if at_us is None else at_us
        self.faults.schedule(count, at, victims=victims)

    def inject_scenario(self, scenario):
        """Schedule a declarative fault scenario.

        ``scenario`` is a :class:`~repro.platform.scenario.FaultScenario`
        (or a plain dict / JSON file path accepted by its loaders) — the
        generalised fault surface: link failures, transients, waves and
        spatial patterns alongside the paper's permanent bursts.
        """
        from repro.platform.scenario import FaultScenario

        if isinstance(scenario, str):
            scenario = FaultScenario.from_json_file(scenario)
        elif isinstance(scenario, dict):
            scenario = FaultScenario.from_dict(scenario)
        self.faults.apply(scenario)
        return scenario

    # -- convenience views ----------------------------------------------------------------

    @property
    def series(self):
        return self.sampler.series

    def task_census(self):
        """Current nodes-per-task census (healthy nodes only)."""
        return self.network.directory.task_census()

    def total_task_switches(self):
        """Intelligence-driven task switches across all nodes so far."""
        return sum(pe.task_switches for pe in self.pes.values())

    def __repr__(self):
        return "CenturionPlatform({}x{}, model={!r}, seed={})".format(
            self.config.width, self.config.height, self.model_name, self.seed
        )
