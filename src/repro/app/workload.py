"""Fork-join workload logic (the application running on Centurion).

The :class:`ForkJoinWorkload` is the object processing elements consult for
application behaviour: source generation, per-task service times and what a
completed execution emits.  It also owns the join bookkeeping — which
branches of which graph instance have been processed by the sink task — and
the application-level statistics the experiments read (generated packets,
per-stage executions, joined instances).

Generation semantics follow the paper: "task 1 (the source task) produces
1 packet every 4 ms".  Successive packets from one source cycle through the
fork's branch indices, so three generation periods produce the three
branches of one instance of the Figure 3 graph.
"""

from repro.noc.packet import Packet
from repro.app.taskgraph import TASK_SINK
from repro.app.workloads.protocol import Workload


class ForkJoinWorkload(Workload):
    """Application hooks + join bookkeeping for a fork-join task graph.

    Parameters
    ----------
    sim:
        Simulator (time source for deadline stamping).
    graph:
        A :class:`repro.app.taskgraph.TaskGraph`, typically from
        :func:`repro.app.taskgraph.fork_join_graph`.
    packet_flits:
        Wormhole length of application packets.
    """

    def __init__(self, sim, graph, packet_flits=4, multicast=False):
        self.sim = sim
        self.graph = graph
        self.packet_flits = packet_flits
        #: Multicast fork dispatch (paper §V future work): a source emits
        #: all fork branches of an instance together, once every
        #: ``fork_width`` generation periods, and the network fans them out
        #: to distinct providers.  Average demand matches the sequential
        #: mode; the branches travel concurrently instead.
        self.multicast = multicast
        self._pending_joins = {}
        self._completed_joins = set()
        # Statistics ---------------------------------------------------------
        self.generated = 0
        self.executions_by_task = {tid: 0 for tid in graph.task_ids()}
        self.joins = 0
        self.duplicate_branches = 0
        self.results_fed_back = 0

    # -- PE-facing API ---------------------------------------------------------

    def generation_period(self, task_id):
        """Generation period of a task or ``None`` (PE source wiring).

        In multicast mode a source emits a whole instance (all branches)
        per tick, so the period stretches by ``fork_width`` to keep the
        average demand identical to the sequential mode.
        """
        task = self.graph.tasks.get(task_id)
        if task is None or task.generation_period_us is None:
            return None
        if self.multicast:
            return task.generation_period_us * self.graph.fork_width
        return task.generation_period_us

    def service_time(self, task_id):
        """Nominal service time for one packet of ``task_id``."""
        return self.graph.task(task_id).service_us

    def packets_for_generation(self, pe):
        """Packets a source node emits on one generation tick.

        Sequential mode (the paper's system): one branch per tick, cycling
        through the fork's branch indices — three ticks build one instance.
        Multicast mode (paper §V extension): all branches of one instance
        per (stretched) tick, fanned to distinct providers by
        :meth:`repro.noc.network.Network.send_multicast`.
        """
        task = self.graph.tasks.get(pe.task_id)
        if task is None or not task.is_source or task.downstream is None:
            return []
        seq = pe._gen_seq
        width = self.graph.fork_width
        if self.multicast:
            instance = (pe.node_id, seq)
            packets = [
                self._make_packet(pe, task, instance=instance, branch=b)
                for b in range(width)
            ]
            self.generated += width
            return packets
        instance = (pe.node_id, seq // width)
        branch = seq % width
        self.generated += 1
        return [self._make_packet(pe, task, instance=instance, branch=branch)]

    def packets_after_execution(self, pe, packet):
        """Packets emitted after ``pe`` finished executing ``packet``."""
        task = self.graph.tasks.get(pe.task_id)
        if task is None:
            return []
        self.executions_by_task[task.task_id] = (
            self.executions_by_task.get(task.task_id, 0) + 1
        )
        if task.emits_on_join:
            return self._handle_join(pe, task, packet)
        if task.downstream is None or task.is_source:
            # Source tasks emit on generation ticks only; their executions
            # are the sinking of fed-back join results.
            return []
        return [
            self._make_packet(
                pe, task, instance=packet.instance, branch=packet.branch
            )
        ]

    # -- join bookkeeping ----------------------------------------------------------

    def _handle_join(self, pe, task, packet):
        """Record a branch at the join task; emit the result when complete."""
        instance = packet.instance
        if instance is None:
            return []
        if instance in self._completed_joins:
            # A straggler branch re-delivered after its instance already
            # joined (e.g. a diverted duplicate); it must not re-open the
            # instance, or the join could be counted twice.
            self.duplicate_branches += 1
            return []
        branches = self._pending_joins.setdefault(instance, set())
        if packet.branch in branches:
            self.duplicate_branches += 1
            return []
        branches.add(packet.branch)
        if len(branches) < self.graph.fork_width:
            return []
        del self._pending_joins[instance]
        self._completed_joins.add(instance)
        self.joins += 1
        if task.downstream is None:
            return []
        self.results_fed_back += 1
        return [self._make_packet(pe, task, instance=instance, branch=None)]

    def _make_packet(self, pe, task, instance, branch):
        now = self.sim.now
        deadline = (
            now + task.deadline_us if task.deadline_us is not None else None
        )
        return Packet(
            src_node=pe.node_id,
            dest_task=task.downstream,
            size_flits=self.packet_flits,
            created_at=now,
            instance=instance,
            branch=branch,
            deadline=deadline,
        )

    # -- introspection ----------------------------------------------------------------

    @property
    def pending_join_count(self):
        """Instances with at least one but not all branches at the sink."""
        return len(self._pending_joins)

    def prune_stale_joins(self, older_than_instances=50_000):
        """Bound join-state growth in very long simulations.

        Instances are keyed ``(source node, sequence)``; entries whose
        sequence lags the newest by more than the given count can never
        complete in practice (their branches were dropped) and are removed,
        along with the completed-instance memory of the same vintage.
        Returns the number of pending entries pruned.
        """
        if not self._pending_joins and not self._completed_joins:
            return 0
        keys = list(self._pending_joins) + list(self._completed_joins)
        newest = max(seq for (_node, seq) in keys)
        stale = [
            key
            for key in self._pending_joins
            if newest - key[1] > older_than_instances
        ]
        for key in stale:
            del self._pending_joins[key]
        self._completed_joins = {
            key
            for key in self._completed_joins
            if newest - key[1] <= older_than_instances
        }
        return len(stale)

    def sink_task_executions(self):
        """Executions completed by the join (sink) task so far."""
        return self.executions_by_task.get(TASK_SINK, 0)

    def source_generations(self):
        """Packets generated by source tasks so far."""
        return self.generated

    def stats(self):
        """Snapshot of all application counters."""
        return {
            "generated": self.generated,
            "executions_by_task": dict(self.executions_by_task),
            "joins": self.joins,
            "pending_joins": self.pending_join_count,
            "duplicate_branches": self.duplicate_branches,
            "results_fed_back": self.results_fed_back,
        }

    def __repr__(self):
        return "ForkJoinWorkload(generated={}, joins={})".format(
            self.generated, self.joins
        )
