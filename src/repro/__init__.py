"""repro — reproduction of "Embedded Social Insect-Inspired Intelligence
Networks for System-level Runtime Management" (Rowlings, Tyrrell, Trefzer;
DATE 2020).

A pure-Python model of the Centurion 128-core NoC platform with per-node
social-insect intelligence modules performing decentralised runtime task
allocation and fault recovery.  Quickstart:

>>> from repro import CenturionPlatform, PlatformConfig
>>> platform = CenturionPlatform(
...     PlatformConfig.small(), model_name="ffw", seed=1)
>>> series = platform.run()       # doctest: +SKIP
>>> series.active_nodes[-1]       # doctest: +SKIP

See README.md for the architecture overview and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from repro.platform.centurion import CenturionPlatform
from repro.platform.config import PlatformConfig
from repro.core.models import MODEL_REGISTRY, create_model
from repro.experiments.runner import run_batch, run_single
from repro.campaign import CampaignSpec, run_campaign

__version__ = "1.0.0"

__all__ = [
    "CenturionPlatform",
    "PlatformConfig",
    "MODEL_REGISTRY",
    "create_model",
    "run_single",
    "run_batch",
    "CampaignSpec",
    "run_campaign",
    "__version__",
]
