"""Deadlock recovery.

The Centurion router includes "a basic deadlock recovery mechanism ... not
guaranteed to alleviate all deadlock conditions or detect and release
deadlocked packets within any guaranteed timespan" (paper §III-A).  We model
the same best-effort behaviour: a packet that would wait longer than
``wait_limit`` µs for an output channel is treated as deadlocked and dropped,
and the drop is counted and reported to the router's monitors.  Dimension-
ordered XY routing is deadlock-free, so in the healthy mesh this mechanism
only fires under extreme congestion; with BFS detour routes around faults it
provides the recovery the paper describes.
"""


class DeadlockRecovery:
    """Best-effort deadlock detection by bounded channel wait.

    Parameters
    ----------
    wait_limit:
        Maximum µs a packet may wait for one output channel before being
        declared deadlocked; ``None`` disables recovery entirely.
    """

    def __init__(self, wait_limit=50_000):
        if wait_limit is not None and wait_limit <= 0:
            raise ValueError("wait_limit must be positive or None")
        self.wait_limit = wait_limit
        self.drops = 0
        self.last_drop_time = None

    def should_drop(self, wait):
        """True when a channel wait of ``wait`` µs exceeds the limit."""
        return self.wait_limit is not None and wait > self.wait_limit

    def record_drop(self, now):
        """Account one recovered (dropped) packet."""
        self.drops += 1
        self.last_drop_time = now

    def __repr__(self):
        return "DeadlockRecovery(limit={}us, drops={})".format(
            self.wait_limit, self.drops
        )
