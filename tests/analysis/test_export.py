"""Tests for CSV/JSON export."""

import csv

import pytest

from repro.analysis.export import (
    load_results_json,
    results_to_csv,
    results_to_json,
    series_to_csv,
)
from repro.experiments.runner import run_single
from repro.platform.config import PlatformConfig


@pytest.fixture(scope="module")
def result():
    return run_single("none", seed=4, config=PlatformConfig.small())


def test_series_to_csv_roundtrip(result, tmp_path):
    path = tmp_path / "series.csv"
    rows = series_to_csv(result.series, path)
    assert rows == len(result.series)
    with open(path) as handle:
        reader = list(csv.DictReader(handle))
    assert len(reader) == rows
    assert "census_task_2" in reader[0]
    assert float(reader[0]["time_ms"]) == result.series.time_ms[0]


def test_results_to_csv(result, tmp_path):
    path = tmp_path / "results.csv"
    count = results_to_csv([result, result], path)
    assert count == 2
    with open(path) as handle:
        rows = list(csv.DictReader(handle))
    assert rows[0]["model"] == "none"
    assert "settled_performance" in rows[0]


def test_results_to_csv_empty_rejected(tmp_path):
    with pytest.raises(ValueError):
        results_to_csv([], tmp_path / "x.csv")


def test_results_to_json_and_load(result, tmp_path):
    path = tmp_path / "results.json"
    count = results_to_json([result], path, include_series=True)
    assert count == 1
    loaded = load_results_json(path)
    assert loaded[0]["model"] == "none"
    assert loaded[0]["app_stats"]["generated"] > 0
    assert "active_nodes" in loaded[0]["series"]


def test_results_to_json_without_series(result, tmp_path):
    path = tmp_path / "lean.json"
    results_to_json([result], path, include_series=False)
    loaded = load_results_json(path)
    assert "series" not in loaded[0]


def test_export_module_doctests_pass():
    """The row-schema docstrings carry a live round-trip example."""
    import doctest

    from repro.analysis import export

    outcome = doctest.testmod(export)
    assert outcome.attempted > 0
    assert outcome.failed == 0
