"""The six division-of-labour model classes of Figure 1, as running code.

Prints the factor taxonomy (which external/internal factors each model
class draws on — the numbered arrows of the paper's Figure 1), then runs
every model on a small platform and shows its behavioural signature:
how often it switched tasks and what census it converged to.

Run:  python examples/model_taxonomy.py
"""

from repro import CenturionPlatform, PlatformConfig
from repro.core.models import MODEL_REGISTRY
from repro.core.models.base import FACTORS


def print_taxonomy():
    factor_order = [
        (FACTORS.LOCATION, "external"),
        (FACTORS.NESTMATES, "external"),
        (FACTORS.TASK_NEEDS, "external"),
        (FACTORS.STIMULUS, "external"),
        (FACTORS.GENES, "internal"),
        (FACTORS.INNATE_THRESHOLD, "internal"),
        (FACTORS.BEHAVIOURAL_STATE, "internal"),
        (FACTORS.EXPERIENCE, "internal"),
        (FACTORS.ONTOGENY, "internal"),
    ]
    models = sorted(
        (cls for cls in MODEL_REGISTRY.values()
         if cls.model_number is not None),
        key=lambda cls: cls.model_number,
    )
    print("Figure 1 factor taxonomy (x = model class uses factor):")
    print()
    name_width = 28
    header = " " * name_width + "".join(
        "  {}".format(cls.model_number) for cls in models
    )
    print(header)
    for factor, kind in factor_order:
        row = "{:<24}{:>4}".format(factor, kind[:3])
        for cls in models:
            row += "  {}".format("x" if factor in cls.factors else ".")
        print(row)
    print()
    for cls in models:
        print("  {} = {} ({!r})".format(
            cls.model_number, cls.__name__, cls.name))


def run_signatures():
    print()
    print("Behavioural signature of each model (4x4 grid, 200 ms):")
    print()
    print("{:<24} {:>8} {:>8} {:>14}".format(
        "model", "switches", "joins", "census 1/2/3"))
    for name in sorted(
        MODEL_REGISTRY,
        key=lambda n: (MODEL_REGISTRY[n].model_number or 0),
    ):
        platform = CenturionPlatform(
            PlatformConfig.small(), model_name=name, seed=5
        )
        platform.run()
        census = platform.task_census()
        print("{:<24} {:>8} {:>8} {:>14}".format(
            name,
            platform.total_task_switches(),
            platform.workload.joins,
            "{}/{}/{}".format(
                census.get(1, 0), census.get(2, 0), census.get(3, 0)
            ),
        ))


def main():
    print_taxonomy()
    run_signatures()


if __name__ == "__main__":
    main()
