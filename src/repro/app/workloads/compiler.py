"""Compile a :class:`WorkloadSpec` into an executable graph program.

The interpreter (:class:`~repro.app.workloads.interpreter.GraphWorkload`)
is a small fixed machine; everything shape-specific is resolved here,
once, into a :class:`CompiledWorkload`:

* **join widths** — how many branches of one instance a join waits for.
  ``W_in(t)`` is the number of packets of a single graph instance that
  reach ``t``: the sum over incoming edges ``(u -> t, fanout f)`` of
  ``E(u) * f``, where ``E(u)`` is 1 for sources and joins (they emit
  one packet per instance per edge-slot) and ``W_in(u)`` for
  pass-through tasks (they forward everything they receive);
* **branch bases** — each incoming edge of a task owns a contiguous
  block of branch numbers, assigned in spec declaration order, so
  branches arriving at a join are globally unique without any runtime
  negotiation;
* **identity edges** — an edge with ``fanout == 1`` whose destination
  has exactly one incoming edge preserves the packet's branch verbatim
  (including ``None``), which is what makes the built-in ``fork_join``
  spec bit-identical to the legacy hand-written application;
* **validation** — every cycle must pass through a source or a join
  (sources absorb incoming packets, joins deduplicate re-visits; a pure
  pass-through cycle would multiply packets forever), and every join
  must be fed by exactly one source (instances are keyed by the
  originating source node);
* **steady-state rates** — per-task packet arrival rates derived from
  the sources' mean arrival rates, feeding the capacity lint
  (:func:`capacity_report`) and the load-aware mapping policy
  (:meth:`CompiledWorkload.demand_weights`).
"""

from repro.app.taskgraph import Task, TaskGraph
from repro.app.workloads.spec import load_workload


class WorkloadGraphError(ValueError):
    """A structurally invalid workload graph."""


class CompiledEdge:
    """One outgoing edge, fully resolved for the interpreter."""

    __slots__ = ("dest", "fanout", "base", "identity")

    def __init__(self, dest, fanout, base, identity):
        self.dest = dest
        self.fanout = fanout
        self.base = base
        self.identity = identity

    def __repr__(self):
        return (
            f"CompiledEdge(dest={self.dest}, fanout={self.fanout}, "
            f"base={self.base}, identity={self.identity})"
        )


class CompiledWorkload:
    """A validated, executable form of a :class:`WorkloadSpec`."""

    def __init__(self, spec, graph, specs, in_width, out_edges,
                 source_slots, origins, packet_rate):
        self.spec = spec
        self.graph = graph
        self.specs = specs
        self.in_width = in_width
        self.out_edges = out_edges
        self.source_slots = source_slots
        self.origins = origins
        self.packet_rate = packet_rate
        joins = sorted(t.task_id for t in spec.tasks if t.join)
        terminals = sorted(
            t.task_id for t in spec.tasks if not t.downstream
        )
        self.sink_ids = joins or terminals

    def demand_weights(self):
        """Steady-state compute demand per task (packet rate x service
        time) — the weight vector the load-aware mapping policy
        balances. Tasks that never receive work keep a tiny floor so
        they still get placed."""
        demand = {}
        for task_id, spec in self.specs.items():
            rate = self.packet_rate.get(task_id, 0.0)
            demand[task_id] = max(rate * spec.service_us, 1e-9)
        return demand

    def __repr__(self):
        return (
            f"CompiledWorkload({self.spec.name!r}, "
            f"tasks={len(self.specs)}, sinks={self.sink_ids})"
        )


def compile_workload(ref):
    """Compile ``ref`` (spec / dict / builtin name / path) — raises
    :class:`WorkloadGraphError` on structurally invalid graphs."""
    spec = load_workload(ref)
    specs = {t.task_id: t for t in spec.tasks}

    def effective_unit(task):
        # Sources and joins emit one packet per instance per edge-slot.
        return task.arrival is not None or task.join

    # Incoming edges per destination, in spec declaration order — the
    # order fixes each edge's branch-number block deterministically.
    incoming = {t.task_id: [] for t in spec.tasks}
    for task in spec.tasks:
        for edge in task.downstream:
            incoming[edge.task].append((task.task_id, edge.fanout))

    # Width propagation order: a pass-through task's contribution depends
    # on its own W_in, so toposort the pass-through dependency edges.
    # Sources and joins contribute a known unit and cut the dependency,
    # which is exactly why every cycle must contain one of them.
    pending = {}
    dependents = {t.task_id: [] for t in spec.tasks}
    for task in spec.tasks:
        deps = 0
        for src, _ in incoming[task.task_id]:
            if not effective_unit(specs[src]):
                deps += 1
                dependents[src].append(task.task_id)
        pending[task.task_id] = deps
    order = [t.task_id for t in spec.tasks if pending[t.task_id] == 0]
    resolved = []
    while order:
        task_id = order.pop(0)
        resolved.append(task_id)
        for dep in dependents[task_id]:
            pending[dep] -= 1
            if pending[dep] == 0:
                order.append(dep)
    if len(resolved) != len(spec.tasks):
        stuck = sorted(t for t, n in pending.items() if n > 0)
        raise WorkloadGraphError(
            f"workload {spec.name!r}: cycle through pass-through "
            f"task(s) {stuck} — every cycle must contain a source or "
            f"a join task"
        )

    in_width = {}
    in_base = {}
    for task_id in resolved:
        width = 0
        bases = []
        for src, fanout in incoming[task_id]:
            src_spec = specs[src]
            unit = 1 if effective_unit(src_spec) else in_width[src]
            bases.append(width)
            width += unit * fanout
        in_width[task_id] = width
        in_base[task_id] = bases

    for task in spec.tasks:
        if task.join:
            if not incoming[task.task_id]:
                raise WorkloadGraphError(
                    f"workload {spec.name!r}: join task {task.task_id} "
                    f"has no incoming edges"
                )
            if in_width[task.task_id] < 1:
                raise WorkloadGraphError(
                    f"workload {spec.name!r}: join task {task.task_id} "
                    f"waits for zero branches"
                )

    # Origin sources: which source's instances flow through each task.
    # Instance keys propagate through joins unchanged, so this is a
    # fixpoint over the whole graph (sources absorb and restart flow).
    origins = {
        t.task_id: ({t.task_id} if t.arrival is not None else set())
        for t in spec.tasks
    }
    changed = True
    while changed:
        changed = False
        for task in spec.tasks:
            if task.arrival is not None:
                continue
            merged = set(origins[task.task_id])
            for src, _ in incoming[task.task_id]:
                merged |= origins[src]
            if merged != origins[task.task_id]:
                origins[task.task_id] = merged
                changed = True
    for task in spec.tasks:
        if not task.join:
            continue
        sources = sorted(origins[task.task_id])
        if len(sources) != 1:
            raise WorkloadGraphError(
                f"workload {spec.name!r}: join task {task.task_id} "
                f"mixes instances from sources {sources} — a join must "
                f"be fed by exactly one source"
            )

    # Resolve outgoing edges with destination bases + identity flags.
    edge_cursor = {task_id: 0 for task_id in specs}
    out_edges = {}
    for task in spec.tasks:
        edges = []
        for edge in task.downstream:
            slot = edge_cursor[edge.task]
            edge_cursor[edge.task] += 1
            base = in_base[edge.task][slot]
            identity = (
                edge.fanout == 1 and len(incoming[edge.task]) == 1
            )
            edges.append(
                CompiledEdge(edge.task, edge.fanout, base, identity)
            )
        out_edges[task.task_id] = edges

    # Flattened per-source emission slots: (dest, branch) per packet of
    # one instance, cycled by the PE's generation sequence.
    source_slots = {}
    for task in spec.tasks:
        if task.arrival is None:
            continue
        slots = []
        for edge in out_edges[task.task_id]:
            for j in range(edge.fanout):
                slots.append((edge.dest, edge.base + j))
        source_slots[task.task_id] = slots

    # Steady-state packet rates (packets/us entering each task). A
    # source's instance rate divides its mean tick rate by the slots per
    # instance; joins re-emit at their instance rate; pass-throughs
    # forward everything. Resolved in the same toposort order.
    instance_rate = {}
    for task in spec.tasks:
        if task.arrival is None:
            continue
        slots = len(source_slots[task.task_id])
        tick_rate = task.arrival.mean_rate() / task.arrival.period_us
        instance_rate[task.task_id] = (
            tick_rate / slots if slots else 0.0
        )

    packet_rate = {task_id: 0.0 for task_id in specs}
    emit_rate = {}

    def source_of(task_id):
        found = sorted(origins[task_id])
        return found[0] if len(found) == 1 else None

    for task_id in resolved:
        task = specs[task_id]
        if task.arrival is not None:
            emit_rate[task_id] = instance_rate[task_id]
        elif task.join:
            origin = source_of(task_id)
            emit_rate[task_id] = (
                instance_rate.get(origin, 0.0) if origin else 0.0
            )
        else:
            emit_rate[task_id] = packet_rate[task_id]
        for edge in out_edges[task_id]:
            packet_rate[edge.dest] += emit_rate[task_id] * edge.fanout
    # Executions = arrivals for every task; sources also execute the
    # packets fed back to them.

    graph = TaskGraph(
        tasks=[_as_task(t) for t in spec.tasks],
        fork_width=max(list(in_width.values()) + [1]),
    )
    return CompiledWorkload(
        spec=spec, graph=graph, specs=specs, in_width=in_width,
        out_edges=out_edges, source_slots=source_slots, origins=origins,
        packet_rate=packet_rate,
    )


def _as_task(spec):
    """Project a TaskSpec onto the legacy Task record (the mapping /
    intelligence / metrics view — ids, names, weights)."""
    downstream = spec.downstream[0].task if spec.downstream else None
    return Task(
        task_id=spec.task_id,
        name=spec.name or f"task{spec.task_id}",
        service_us=spec.service_us,
        generation_period_us=(
            spec.arrival.period_us if spec.arrival is not None else None
        ),
        downstream=downstream,
        emits_on_join=spec.join and bool(spec.downstream),
        deadline_us=spec.deadline_us,
        weight=spec.weight,
    )


def capacity_report(compiled, num_nodes):
    """Steady-state capacity / stability preview for the lint.

    For each task: the mean packet arrival rate, the compute demand in
    node-equivalents (``rate x service_us``), the node share its mapping
    weight buys it, and the resulting utilisation. Returns
    ``(rows, warnings)`` — utilisation > 1 means the steady-state
    arrival rate exceeds capacity (queues grow without bound);
    ``peak_utilization`` additionally evaluates the arrival curve at its
    peak, flagging shapes that are only transiently over capacity.
    """
    spec = compiled.spec
    total_weight = sum(t.weight for t in spec.tasks) or 1
    rows = []
    warnings = []
    for task in spec.tasks:
        rate = compiled.packet_rate.get(task.task_id, 0.0)
        demand = rate * task.service_us
        share = num_nodes * task.weight / total_weight
        utilization = demand / share if share else float("inf")
        peak = utilization
        origin = sorted(compiled.origins.get(task.task_id, ()))
        if origin:
            arrival = compiled.specs[origin[0]].arrival
            if arrival is not None and arrival.mean_rate() > 0:
                peak = utilization / arrival.mean_rate()
        rows.append({
            "task": task.task_id,
            "name": task.name or f"task{task.task_id}",
            "rate_per_ms": rate * 1_000.0,
            "service_us": task.service_us,
            "demand_nodes": demand,
            "share_nodes": share,
            "utilization": utilization,
            "peak_utilization": peak,
        })
        is_source = task.arrival is not None
        if rate <= 0.0 and not is_source:
            warnings.append(
                f"task {task.task_id} never receives work "
                f"(unreachable from every source)"
            )
        elif utilization > 1.0:
            warnings.append(
                f"task {task.task_id} is over capacity: steady-state "
                f"demand {demand:.2f} node-equivalents vs a share of "
                f"{share:.2f} (utilization {utilization:.2f})"
            )
        elif peak > 1.0:
            warnings.append(
                f"task {task.task_id} is transiently over capacity at "
                f"the arrival peak (peak utilization {peak:.2f}) — "
                f"queues must drain during the quiet phase"
            )
    return rows, warnings
