"""Platform configuration.

One frozen dataclass carries every tunable of the reproduction, grouped by
subsystem.  Defaults are the calibrated Centurion-V6 values: the paper's
explicit parameters (8×16 grid, 4 ms task-1 period, 20 ms FFW timeout,
500 ms fault injection, 1000 ms horizon) plus this reproduction's service
times and NoC timings (documented in DESIGN.md).
"""

import dataclasses


@dataclasses.dataclass(frozen=True)
class PlatformConfig:
    """All platform parameters with Centurion-V6 defaults."""

    # -- grid ---------------------------------------------------------------
    width: int = 16
    height: int = 8

    # -- NoC timing ----------------------------------------------------------
    flit_time_us: int = 1
    wire_latency_us: int = 1
    router_latency_us: int = 2
    packet_flits: int = 4
    deadlock_wait_limit_us: int = 50_000
    max_reroutes: int = 32
    recent_queue_depth: int = 8
    #: "xy" (the paper's evaluated heuristic) or "adaptive" (§V extension:
    #: congestion-aware minimal output-port selection).
    routing_mode: str = "xy"
    #: Express hop engine: collapse multi-hop flights into single events
    #: when provably safe (see repro.noc.network).  Bit-identical results
    #: either way; the knob exists for A/B verification and debugging.
    fast_path: bool = True

    # -- processing elements ----------------------------------------------------
    queue_capacity: int = 6
    service_jitter: float = 0.1
    overflow_hold_us: int = 750

    # -- task graph (Figure 3, ratio 1:3:1) ---------------------------------------
    fork_width: int = 3
    generation_period_us: int = 4_000
    source_service_us: int = 500
    branch_service_us: int = 12_500
    sink_service_us: int = 3_000
    packet_deadline_us: int = 16_000
    #: Paper §V extension: emit all fork branches of an instance together
    #: (once per ``fork_width`` periods) and fan them to distinct providers.
    multicast_fork: bool = False

    # -- intelligence ----------------------------------------------------------------
    aim_tick_us: int = 2_000
    ni_threshold: int = 24
    ffw_timeout_us: int = 20_000
    ffw_deadline_margin_us: int = 8_000

    # -- experiment harness -------------------------------------------------------------
    initial_mapping: str = "random"
    metrics_window_us: int = 10_000
    horizon_us: int = 1_000_000
    fault_time_us: int = 500_000

    def __post_init__(self):
        if self.width < 2 or self.height < 1:
            raise ValueError("grid must be at least 2x1")
        if self.initial_mapping not in ("random", "balanced", "clustered"):
            raise ValueError(
                "unknown initial mapping {!r}".format(self.initial_mapping)
            )
        if self.routing_mode not in ("xy", "adaptive"):
            raise ValueError(
                "unknown routing mode {!r}".format(self.routing_mode)
            )
        if self.fault_time_us > self.horizon_us:
            raise ValueError("fault time beyond horizon")
        for field in (
            "flit_time_us",
            "generation_period_us",
            "aim_tick_us",
            "ffw_timeout_us",
            "metrics_window_us",
            "horizon_us",
        ):
            if getattr(self, field) <= 0:
                raise ValueError("{} must be positive".format(field))

    @property
    def num_nodes(self):
        return self.width * self.height

    def replace(self, **changes):
        """A copy with the given fields changed."""
        return dataclasses.replace(self, **changes)

    @classmethod
    def small(cls, **changes):
        """A fast 4×4 configuration for tests and examples."""
        base = dict(
            width=4,
            height=4,
            horizon_us=200_000,
            fault_time_us=100_000,
        )
        base.update(changes)
        if (
            "fault_time_us" not in changes
            and base["fault_time_us"] > base["horizon_us"]
        ):
            base["fault_time_us"] = base["horizon_us"] // 2
        return cls(**base)

    def model_params(self, model_name):
        """Constructor parameters for a named intelligence model."""
        if model_name in ("network_interaction", "ni"):
            return {"threshold": self.ni_threshold}
        if model_name in ("foraging_for_work", "ffw"):
            return {
                "timeout_us": self.ffw_timeout_us,
                "deadline_margin_us": self.ffw_deadline_margin_us,
            }
        return {}
