"""Tests for the Artificial Intelligence Module."""

import pytest

from repro.core.models.base import IntelligenceModel
from repro.noc.packet import Packet


class ProbeModel(IntelligenceModel):
    """Records every hook invocation."""

    name = "probe"

    def __init__(self, task_ids=(1, 2, 3)):
        super().__init__(task_ids)
        self.events = []
        self.bound_to = None
        self.tunable = 0

    def bind(self, aim):
        self.bound_to = aim.node_id

    def on_packet_routed(self, aim, packet, to_internal, injected):
        self.events.append(("routed", packet.dest_task, to_internal, injected))

    def on_internal_sink(self, aim, packet):
        self.events.append(("sink", packet.dest_task))

    def on_execution_complete(self, aim, task_id):
        self.events.append(("complete", task_id))

    def on_task_changed(self, aim, old, new):
        self.events.append(("changed", old, new))

    def on_tick(self, aim, now):
        self.events.append(("tick", now))


@pytest.fixture
def probed(small_platform):
    platform = small_platform
    model = ProbeModel()
    platform.aims[5].upload_model(model)
    return platform, platform.aims[5], model


def test_upload_binds_model(probed):
    _platform, _aim, model = probed
    assert model.bound_to == 5


def test_ticks_delivered_periodically(probed):
    platform, _aim, model = probed
    platform.sim.run_until(platform.config.aim_tick_us * 3 + 1)
    ticks = [e for e in model.events if e[0] == "tick"]
    assert len(ticks) == 3


def test_router_events_relayed_with_injected_flag(probed):
    platform, _aim, model = probed
    router = platform.network.router(5)
    transit = Packet(0, dest_task=2)
    transit.hops = 2
    router.notify_routed(transit, to_internal=False)
    local = Packet(5, dest_task=3)  # hops == 0: locally injected
    router.notify_routed(local, to_internal=False)
    routed = [e for e in model.events if e[0] == "routed"]
    assert routed == [("routed", 2, False, False), ("routed", 3, False, True)]


def test_pe_events_relayed(probed):
    platform, _aim, model = probed
    pe = platform.pes[5]
    pe.set_task(2, reason="test")
    pe.receive(Packet(0, dest_task=2))
    platform.sim.run_until(50_000)
    kinds = {e[0] for e in model.events}
    assert {"changed", "sink", "complete"} <= kinds


def test_switch_task_knob(probed):
    platform, aim, _model = probed
    aim.switch_task(3)
    assert platform.pes[5].task_id == 3
    assert platform.pes[5].task_switches >= 1


def test_knob_reason_is_model_name(probed):
    platform, aim, _model = probed
    assert aim.knobs["task_select"].reason == "probe"


def test_shutdown_stops_ticks(probed):
    platform, aim, model = probed
    platform.sim.run_until(platform.config.aim_tick_us + 1)
    aim.shutdown()
    before = len([e for e in model.events if e[0] == "tick"])
    platform.sim.run_until(platform.config.aim_tick_us * 10)
    after = len([e for e in model.events if e[0] == "tick"])
    assert before == after


def test_halted_node_silences_relays(probed):
    platform, _aim, model = probed
    platform.pes[5].halt()
    router = platform.network.router(5)
    packet = Packet(0, dest_task=2)
    packet.hops = 1
    router.notify_routed(packet, to_internal=False)
    routed = [e for e in model.events if e[0] == "routed"]
    assert routed == []


def test_rcap_write_params(probed):
    _platform, aim, model = probed
    aim.rcap_write_params({"tunable": 9})
    assert model.tunable == 9


def test_rcap_unknown_param_rejected(probed):
    _platform, aim, _model = probed
    with pytest.raises(KeyError):
        aim.rcap_write_params({"definitely_not_a_param": 1})


def test_rcap_without_model_rejected(small_platform):
    aim = small_platform.aims[5]
    aim.upload_model(None)
    with pytest.raises(RuntimeError):
        aim.rcap_write_params({"x": 1})


def test_model_replacement(probed):
    platform, aim, old_model = probed
    replacement = ProbeModel()
    aim.upload_model(replacement)
    platform.sim.run_until(platform.config.aim_tick_us + 1)
    assert any(e[0] == "tick" for e in replacement.events)


def test_frequency_and_clock_helpers(probed):
    platform, aim, _model = probed
    assert aim.set_frequency(250) == 250
    assert aim.set_clock_enabled(False) is False
    assert aim.set_clock_enabled(True) is True
    assert aim.reset_node() is True
