"""Recurring and delayed processes on top of the event kernel.

:class:`PeriodicProcess` models things that tick at a fixed period — the
task-1 packet sources (every 4 ms), the AIM timer ticks (every 2 ms per
node), the metric sampler (every 10 ms).  It reschedules itself after each
tick and can be stopped and restarted; restarting re-aligns the phase to
"now + period".

Periodic ticks were historically the most numerous events in a platform
run (128 AIMs ticking every 2 ms dwarf the packet traffic), so the tick
train is built for the kernel's cheapest path: each ``start()`` creates
one closure that re-posts itself through the handle-less
:meth:`repro.sim.engine.Simulator.post`, and stopping is an epoch bump
that strands the in-flight tick as a no-op instead of allocating and
tombstoning cancellable events.  The event-driven AIM timer mode
(:mod:`repro.core.aim`) now removes that tick storm entirely for models
that only poll a timeout — it borrows the same stranding idea: stale
wakeups fire as no-ops behind a due-ness re-check rather than being
cancelled — leaving the periodic train to the processes that genuinely
do work every period (packet sources, the metric sampler, per-tick
models).
"""


class PeriodicProcess:
    """Run ``callback(process)`` every ``period`` µs until stopped.

    Parameters
    ----------
    sim:
        The :class:`repro.sim.engine.Simulator` supplying time.
    period:
        Tick period in µs; must be positive.
    callback:
        Called with the process instance at each tick.
    priority:
        Event priority for the ticks.
    jitter_rng, jitter:
        Optional uniform phase jitter in µs added to every tick, drawn from
        ``jitter_rng``; used by packet sources so that 25 task-1 nodes do not
        all emit in the same microsecond.
    """

    def __init__(self, sim, period, callback, priority=None, jitter_rng=None,
                 jitter=0):
        if period <= 0:
            raise ValueError("period must be positive, got {}".format(period))
        self.sim = sim
        self.period = int(period)
        self.callback = callback
        self.priority = (
            sim.PRIORITY_NORMAL if priority is None else priority
        )
        self.jitter_rng = jitter_rng
        self.jitter = int(jitter)
        self._jittered = jitter_rng is not None and self.jitter > 0
        self.ticks = 0
        #: Tick-train epoch: every start/stop invalidates the previous
        #: train, so a stale posted tick returns without effect.
        self._epoch = 0
        self._stopped = True

    # -- control -----------------------------------------------------------

    def start(self, initial_delay=None):
        """Begin ticking; first tick after ``initial_delay`` (default period)."""
        self._stopped = False
        self._epoch = epoch = self._epoch + 1
        sim = self.sim
        priority = self.priority

        def tick():
            if epoch != self._epoch:
                return  # stopped or restarted since this tick was posted
            self.ticks += 1
            self.callback(self)
            if epoch != self._epoch:
                return  # the callback stopped or restarted us
            delay = self.period
            if self._jittered:
                delay += self.jitter_rng.randrange(0, self.jitter + 1)
            sim.post(delay, tick, priority)

        delay = self.period if initial_delay is None else int(initial_delay)
        sim.post(delay + self._draw_jitter(), tick, priority)
        return self

    def stop(self):
        """Invalidate any pending tick; safe to call repeatedly."""
        self._stopped = True
        self._epoch += 1

    @property
    def running(self):
        return not self._stopped

    # -- internals ----------------------------------------------------------

    def _draw_jitter(self):
        if not self._jittered:
            return 0
        return self.jitter_rng.randrange(0, self.jitter + 1)


def delayed_call(sim, delay, callback, priority=None):
    """Schedule a one-shot ``callback()`` after ``delay`` µs; returns handle."""
    if priority is None:
        priority = sim.PRIORITY_NORMAL
    return sim.schedule(delay, callback, priority=priority)
