"""Documentation guarantees.

The deliverable includes "doc comments on every public item"; this test
walks the installed package and enforces it: every module, every public
class and every public function/method carries a docstring.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    modules = [repro]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        modules.append(importlib.import_module(info.name))
    return modules


MODULES = _walk_modules()


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), (
        "module {} lacks a docstring".format(module.__name__)
    )


def _public_classes():
    seen = set()
    for module in MODULES:
        for name, cls in inspect.getmembers(module, inspect.isclass):
            if name.startswith("_") or cls.__module__ != module.__name__:
                continue
            if cls in seen:
                continue
            seen.add(cls)
            yield cls


@pytest.mark.parametrize(
    "cls", sorted(_public_classes(), key=lambda c: c.__qualname__),
    ids=lambda c: "{}.{}".format(c.__module__, c.__qualname__),
)
def test_public_class_documented(cls):
    assert cls.__doc__ and cls.__doc__.strip(), (
        "class {} lacks a docstring".format(cls.__qualname__)
    )
    for name, member in inspect.getmembers(cls, inspect.isfunction):
        if name.startswith("_") or member.__qualname__.split(".")[0] != (
            cls.__qualname__
        ):
            continue
        assert member.__doc__ and member.__doc__.strip(), (
            "method {}.{} lacks a docstring".format(cls.__qualname__, name)
        )


def _public_functions():
    for module in MODULES:
        for name, fn in inspect.getmembers(module, inspect.isfunction):
            if name.startswith("_") or fn.__module__ != module.__name__:
                continue
            yield fn


@pytest.mark.parametrize(
    "fn", sorted(_public_functions(), key=lambda f: f.__qualname__),
    ids=lambda f: "{}.{}".format(f.__module__, f.__qualname__),
)
def test_public_function_documented(fn):
    assert fn.__doc__ and fn.__doc__.strip(), (
        "function {} lacks a docstring".format(fn.__qualname__)
    )


def _load_link_checker():
    import importlib.util
    import os

    path = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "tools", "check_doc_links.py",
    )
    spec = importlib.util.spec_from_file_location("check_doc_links", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_docs_exist():
    import os

    checker = _load_link_checker()
    names = {os.path.relpath(p, checker.REPO_ROOT)
             for p in checker.doc_files()}
    assert {"README.md", os.path.join("docs", "architecture.md"),
            os.path.join("docs", "cli.md")} <= names


def test_docs_relative_links_resolve():
    checker = _load_link_checker()
    dangling = {
        path: checker.dangling_links(path)
        for path in checker.doc_files()
    }
    assert all(not missing for missing in dangling.values()), dangling
