"""Protocol/property layer for the campaign serve daemon.

Hypothesis drives generated campaign specs through the full HTTP
round-trip — submit → status → stored result — against a live
:class:`~repro.campaign.serve.CampaignServer` (fake ``run_fn``, no
simulations — fast).  The properties pinned here are the daemon's
client-facing contract:

* a submitted grid completes with coherent counters
  (``executed + cached + deduped + failed == total``) and the store on
  disk holds exactly the expansion's cell keys;
* resubmitting a finished campaign is a pure cache hit — zero
  executions;
* the events stream brackets every run (``submitted`` … ``completed``)
  and agrees with the status endpoint;
* a malformed spec is rejected with **4xx and a structured error
  body** — never a 500, never a half-registered campaign: the name
  stays a 404 afterwards.
"""

import itertools
import json
import os
import urllib.error
import urllib.request

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.campaign.client import CampaignClient, ServeError
from repro.campaign.serve import CampaignServer
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import ResultStore
from repro.experiments.runner import RunResult

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

MODELS = ("none", "foraging_for_work", "ni")

#: Unique campaign names across hypothesis examples sharing one server.
_names = itertools.count()


def fake_run(descriptor):
    """Deterministic stand-in for ``run_single`` (cell-derived fields)."""
    return RunResult(
        model=descriptor.model,
        seed=descriptor.seed,
        faults=descriptor.faults,
        settling_time_ms=1.0 + descriptor.seed,
        settled_performance=0.9,
        recovery_time_ms=2.0 + descriptor.faults,
        recovered_performance=0.8,
        series=None,
        app_stats={},
        noc_stats={},
        total_switches=descriptor.seed,
    )


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    root = str(tmp_path_factory.mktemp("serve-root"))
    with CampaignServer(root, workers=3, run_fn=fake_run) as daemon:
        yield daemon


@pytest.fixture(scope="module")
def client(server):
    return CampaignClient(server.url)


@st.composite
def spec_payloads(draw):
    models = draw(st.lists(
        st.sampled_from(MODELS), min_size=1, max_size=3, unique=True
    ))
    seeds = draw(st.lists(
        st.integers(min_value=1, max_value=10**6),
        min_size=1, max_size=3, unique=True,
    ))
    faults = draw(st.lists(
        st.integers(min_value=0, max_value=64),
        min_size=1, max_size=2, unique=True,
    ))
    return {
        "name": "proto-{:04d}".format(next(_names)),
        "models": models,
        "seeds": seeds,
        "fault_counts": faults,
        "base": "small",
    }


def post_raw(url, body, content_length=None):
    """POST raw bytes to ``/campaigns``; returns (status, parsed body)."""
    request = urllib.request.Request(
        url + "/campaigns", data=body,
        headers={"Content-Type": "application/json"}, method="POST",
    )
    if content_length is not None:
        request.add_header("Content-Length", str(content_length))
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


# -- round-trip properties ----------------------------------------------------


@SETTINGS
@given(payload=spec_payloads())
def test_submit_status_result_roundtrip(server, client, payload):
    spec = CampaignSpec.from_dict(payload)
    expected = {descriptor.key() for descriptor in spec.expand()}

    receipt = client.submit(payload)
    assert receipt.id == payload["name"]
    assert receipt.total == spec.size() == len(expected)

    final = client.wait(receipt.id, timeout=30.0)
    assert final.state == "completed"
    assert final.failed == 0 and final.pending == 0
    assert final.done == final.total
    assert (final.executed + final.cached + final.deduped
            + final.failed) == final.total

    # The store on disk holds exactly the expansion's cell keys.
    store = ResultStore(os.path.join(server.root, payload["name"]))
    try:
        assert set(store.keys()) == expected
    finally:
        store.close()

    # Resubmitting a finished campaign is a pure cache hit.
    client.submit(payload)
    again = client.wait(receipt.id, timeout=30.0)
    assert again.state == "completed"
    assert again.executed == 0
    assert again.cached + again.deduped == again.total


@SETTINGS
@given(payload=spec_payloads())
def test_events_bracket_every_run(server, client, payload):
    receipt = client.submit(payload)
    client.wait(receipt.id, timeout=30.0)
    events = list(client.events(receipt.id))
    kinds = [event["event"] for event in events]
    assert kinds[0] == "submitted"
    assert kinds[-1] == "completed"
    cells = [event for event in events if event["event"] == "cell"]
    assert len(cells) == receipt.total
    assert {event["status"] for event in cells} <= {
        "executed", "cached", "deduped"
    }
    # The stream agrees with the status endpoint.
    assert events[-1]["state"] == client.status(receipt.id).state


# -- rejection surface --------------------------------------------------------

MALFORMED = [
    pytest.param({}, id="missing-name"),
    pytest.param({"name": "bad-a"}, id="missing-models"),
    pytest.param({"name": "bad-b", "models": []}, id="empty-models"),
    pytest.param(
        {"name": "bad-c", "models": ["none"]}, id="missing-seeds"
    ),
    pytest.param(
        {"name": "bad-d", "models": ["none"], "seeds": [1, 1]},
        id="duplicate-seeds",
    ),
    pytest.param(
        {"name": "bad-e", "models": ["no-such-model"], "seeds": [1]},
        id="unknown-model",
    ),
    pytest.param(
        {"name": "bad-f", "models": ["none"], "seeds": [1],
         "base": "gigantic"},
        id="unknown-base",
    ),
    pytest.param(
        {"name": "bad-g", "models": ["none"], "seeds": [1],
         "frobnicate": True},
        id="unknown-key",
    ),
    pytest.param(
        {"name": "bad-h", "models": ["none"], "seeds": [1],
         "kind": "spiral"},
        id="unknown-kind",
    ),
]


@pytest.mark.parametrize("payload", MALFORMED)
def test_malformed_specs_reject_structured(server, client, payload):
    status, body = post_raw(server.url, json.dumps(payload).encode())
    assert 400 <= status < 500, body
    assert set(body) == {"error"}
    assert body["error"]["type"] == "invalid-spec"
    assert body["error"]["message"]
    # Never a half-registered campaign: the name stays unknown.
    name = payload.get("name")
    if name:
        with pytest.raises(ServeError) as excinfo:
            client.status(name)
        assert excinfo.value.status == 404
        assert name not in {status.id for status in client.campaigns()}


@pytest.mark.parametrize("body,expect_kind", [
    pytest.param(b"", "invalid-request", id="empty-body"),
    pytest.param(b"not json {", "invalid-json", id="garbage-bytes"),
    pytest.param(b"[1, 2, 3]", "invalid-spec", id="non-object"),
    pytest.param(b'"just a string"', "invalid-spec", id="string-body"),
])
def test_non_spec_bodies_reject_structured(server, body, expect_kind):
    status, parsed = post_raw(server.url, body)
    assert 400 <= status < 500
    assert parsed["error"]["type"] == expect_kind
    assert parsed["error"]["message"]


def test_oversized_body_rejected_without_read(server):
    from repro.campaign import serve

    status, parsed = post_raw(
        server.url, b"{}", content_length=serve.MAX_BODY_BYTES + 1
    )
    assert status == 413
    assert parsed["error"]["type"] == "payload-too-large"


def test_unknown_routes_are_structured_404s(server, client):
    for path in ("/nope", "/campaigns/ghost/nope/extra"):
        request = urllib.request.Request(server.url + path)
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 404
        assert json.loads(excinfo.value.read())["error"]["type"] == (
            "not-found"
        )
    with pytest.raises(ServeError) as excinfo:
        client.status("ghost")
    assert excinfo.value.kind == "unknown-campaign"
    with pytest.raises(ServeError) as excinfo:
        list(client.events("ghost"))
    assert excinfo.value.status == 404


def test_post_to_unknown_route_is_404(server):
    request = urllib.request.Request(
        server.url + "/healthz", data=b"{}", method="POST"
    )
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request, timeout=10)
    assert excinfo.value.code == 404


def test_healthz_and_metrics_shape(server, client):
    health = client.healthz()
    assert health["status"] == "ok"
    assert health["root"] == server.root
    assert health["workers"] == server.workers
    before = client.metrics()["submissions_rejected"]
    post_raw(server.url, b"not json {")
    metrics = client.metrics()
    assert metrics["workers"] == server.workers
    assert metrics["campaigns"] == health["campaigns"]
    assert metrics["submissions_rejected"] == before + 1
    assert (metrics["executed"] + metrics["cached"] + metrics["deduped"]
            + metrics["failed"] + metrics["pending"]) == metrics["cells"]
