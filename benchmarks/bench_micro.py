"""Microbenchmarks of the simulation's hot paths.

These time the components the headline experiments lean on, so performance
regressions show up here before they make the table sweeps unbearable:
event-queue throughput, provider lookups, threshold circuits and a short
full-platform run.
"""

from repro.core.models.network_interaction import NetworkInteractionModel
from repro.core.thresholds import ThresholdUnit
from repro.noc.packet import Packet
from repro.noc.routing import ProviderDirectory, RoutingPolicy
from repro.noc.topology import MeshTopology
from repro.platform.centurion import CenturionPlatform
from repro.platform.config import PlatformConfig
from repro.sim.engine import Simulator


def test_event_queue_throughput(benchmark):
    """Schedule + dispatch 10k no-op events."""

    def run():
        sim = Simulator(seed=0)
        for i in range(10_000):
            sim.schedule(i % 997, lambda: None)
        sim.run_until(1_000)
        return sim.dispatched_events

    dispatched = benchmark(run)
    assert dispatched == 10_000


def test_nearest_provider_lookup(benchmark):
    """Ranked-provider query on a realistically populated directory."""
    topology = MeshTopology(16, 8)
    directory = ProviderDirectory(topology)
    for node in topology.node_ids():
        directory.set_task(node, (node % 5) % 3 + 1)

    def run():
        total = 0
        for origin in range(0, 128, 7):
            provider = directory.nearest_provider(origin, 2)
            total += provider if provider is not None else 0
        return total

    assert benchmark(run) > 0


def test_fault_table_rebuild(benchmark):
    """BFS routing-table construction around a damaged region."""
    topology = MeshTopology(16, 8)
    # A 12-router dead band across row y=2 (columns 2..13); the mesh stays
    # connected around its edges, so every path needs a detour.
    faults = {topology.node_id(x, 2) for x in range(2, 14)}

    def run():
        policy = RoutingPolicy(topology)
        policy.set_failed(faults)
        hops = 0
        for dest in (0, 17, 127):
            if dest in faults:
                continue
            hops += len(policy.path(100, dest))
        return hops

    assert benchmark(run) > 0


def test_threshold_circuit_rate(benchmark):
    """Excitation rate through a threshold unit (the per-packet cost)."""

    def run():
        unit = ThresholdUnit(threshold=24)
        for _ in range(5_000):
            unit.excite()
        return unit.fires

    assert benchmark(run) == 200


def test_ni_model_event_rate(benchmark):
    """Per-routing-event cost of the NI model's full pathway."""
    from tests.core.conftest import StubAim

    sim = Simulator(seed=0)
    aim = StubAim(sim)
    model = NetworkInteractionModel((1, 2, 3), threshold=1000)
    model.bind(aim)
    packet = Packet(0, dest_task=2)
    packet.hops = 1

    def run():
        for _ in range(2_000):
            model.on_packet_routed(aim, packet, to_internal=False,
                                   injected=False)
        return model.counter_values()[2]

    assert benchmark(run) >= 0


def test_tick_overhead_idle_ffw(benchmark):
    """Timer-tick overhead on an idle-heavy FFW platform.

    Sparse traffic (one generation per 200 simulated ms) leaves the AIM
    timer layer as the dominant event class, so this micro isolates what
    the tick train costs when (almost) nothing is armed — the population
    the event timer mode retires.  It runs with the default ``timer_mode``
    so the bench history tracks whichever scheduling mode ships.
    """

    def run():
        platform = CenturionPlatform(
            PlatformConfig.small(
                horizon_us=1_000_000,
                fault_time_us=500_000,
                generation_period_us=200_000,
                metrics_window_us=50_000,
            ),
            model_name="ffw",
            seed=7,
        )
        platform.run()
        return platform.sim.dispatched_events

    assert benchmark(run) > 0


def test_small_platform_run(benchmark):
    """Full-stack 4x4 run, 50 simulated ms.

    This is the benchmark the ``make bench`` regression gate watches, so
    it uses enough rounds for a noise-resistant median.
    """

    def run():
        platform = CenturionPlatform(
            PlatformConfig.small(), model_name="ffw", seed=1
        )
        platform.run(50_000)
        return platform.workload.stats()["generated"]

    assert benchmark.pedantic(run, rounds=15, iterations=3) > 0
